#include "linalg/cholesky.h"

#include <cmath>

#include "common/error.h"

namespace clite {
namespace linalg {

Cholesky::Cholesky(const Matrix& a, double jitter, double max_jitter)
{
    refactor(a, jitter, max_jitter);
}

void
Cholesky::refactor(const Matrix& a, double jitter, double max_jitter)
{
    CLITE_CHECK(a.rows() == a.cols(),
                "Cholesky requires a square matrix, got " << a.rows() << "x"
                                                          << a.cols());
    if (tryFactor(a, 0.0)) {
        applied_jitter_ = 0.0;
        return;
    }
    for (double j = jitter; j <= max_jitter; j *= 10.0) {
        if (tryFactor(a, j)) {
            applied_jitter_ = j;
            return;
        }
    }
    CLITE_THROW("matrix is not positive definite even with jitter "
                << max_jitter);
}

bool
Cholesky::tryFactor(const Matrix& a, double jitter)
{
    const size_t n = a.rows();
    l_.reshape(n, n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            if (i == j)
                sum += jitter;
            for (size_t k = 0; k < j; ++k)
                sum -= l_(i, k) * l_(j, k);
            if (i == j) {
                if (sum <= 0.0 || !std::isfinite(sum))
                    return false;
                l_(i, i) = std::sqrt(sum);
            } else {
                l_(i, j) = sum / l_(j, j);
            }
        }
    }
    return true;
}

bool
Cholesky::appendRow(const Vector& b, double c)
{
    const size_t n = size();
    CLITE_CHECK(b.size() == n,
                "appendRow expects " << n << " covariances, got "
                                     << b.size());
    // New off-diagonal row: L l₁₂ = b, exactly the recurrence the full
    // factorization would run for row n.
    Vector l12 = solveLower(b);
    double pivot = c + applied_jitter_ - dot(l12, l12);
    if (pivot <= 0.0 || !std::isfinite(pivot))
        return false;

    Matrix grown(n + 1, n + 1, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j <= i; ++j)
            grown(i, j) = l_(i, j);
    for (size_t j = 0; j < n; ++j)
        grown(n, j) = l12[j];
    grown(n, n) = std::sqrt(pivot);
    l_ = std::move(grown);
    return true;
}

Vector
Cholesky::solveLower(const Vector& b) const
{
    const size_t n = size();
    CLITE_CHECK(b.size() == n, "solveLower size mismatch: " << b.size()
                                   << " vs " << n);
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= l_(i, k) * y[k];
        y[i] = sum / l_(i, i);
    }
    return y;
}

Vector
Cholesky::solveUpper(const Vector& b) const
{
    const size_t n = size();
    CLITE_CHECK(b.size() == n, "solveUpper size mismatch: " << b.size()
                                   << " vs " << n);
    Vector x(n);
    for (size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= l_(k, ii) * x[k];
        x[ii] = sum / l_(ii, ii);
    }
    return x;
}

Vector
Cholesky::solve(const Vector& b) const
{
    return solveUpper(solveLower(b));
}

void
Cholesky::solveInPlace(Vector& b) const
{
    const size_t n = size();
    CLITE_CHECK(b.size() == n, "solveInPlace size mismatch: " << b.size()
                                   << " vs " << n);
    // Forward substitution: b[k] for k < i has already been replaced
    // by y[k] when row i consumes it — the in-place update performs
    // exactly the operation sequence of solveLower.
    for (size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= l_(i, k) * b[k];
        b[i] = sum / l_(i, i);
    }
    // Backward substitution, same argument in reverse.
    for (size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= l_(k, ii) * b[k];
        b[ii] = sum / l_(ii, ii);
    }
}

double
Cholesky::logDet() const
{
    double acc = 0.0;
    for (size_t i = 0; i < size(); ++i)
        acc += std::log(l_(i, i));
    return 2.0 * acc;
}

} // namespace linalg
} // namespace clite

/**
 * @file
 * Dense row-major matrix and vector helpers.
 *
 * This is the minimal linear-algebra substrate the Gaussian-process
 * surrogate needs: construction, element access, products, transposes,
 * and the symmetric positive-definite factorizations in cholesky.h.
 * Vectors are plain std::vector<double>; free functions in this header
 * supply the vector algebra.
 */

#ifndef CLITE_LINALG_MATRIX_H
#define CLITE_LINALG_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace clite {
namespace linalg {

/** Dense vector type used across the numeric substrates. */
using Vector = std::vector<double>;

/**
 * Dense row-major matrix of doubles.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /**
     * Construct a rows x cols matrix.
     * @param rows Number of rows.
     * @param cols Number of columns.
     * @param fill Initial value of every element.
     */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /**
     * Construct from nested initializer lists:
     *   Matrix m{{1, 2}, {3, 4}};
     * @pre all rows have equal length.
     */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** Identity matrix of size n. */
    static Matrix identity(size_t n);

    /** Number of rows. */
    size_t rows() const { return rows_; }
    /** Number of columns. */
    size_t cols() const { return cols_; }
    /** True when the matrix has no elements. */
    bool empty() const { return data_.empty(); }

    /** Mutable element access (bounds-checked in debug via assert). */
    double& operator()(size_t r, size_t c);
    /** Const element access. */
    double operator()(size_t r, size_t c) const;

    /** Raw storage (row-major). */
    const std::vector<double>& data() const { return data_; }

    /** Extract row r as a Vector. */
    Vector row(size_t r) const;
    /** Extract column c as a Vector. */
    Vector col(size_t c) const;

    /** Transpose. */
    Matrix transposed() const;

    /** Matrix-matrix product. @pre cols() == rhs.rows() */
    Matrix operator*(const Matrix& rhs) const;

    /** Matrix-vector product. @pre cols() == v.size() */
    Vector operator*(const Vector& v) const;

    /** Element-wise sum. @pre same shape */
    Matrix operator+(const Matrix& rhs) const;

    /** Element-wise difference. @pre same shape */
    Matrix operator-(const Matrix& rhs) const;

    /** Scale every element. */
    Matrix operator*(double s) const;

    /** Add s to every diagonal element (jitter / ridge). @pre square */
    void addDiagonal(double s);

    /**
     * Re-shape to rows x cols with every element set to @p fill,
     * reusing the existing storage when capacity allows. This is the
     * allocation-free path for scratch matrices rebuilt every
     * hyper-fit probe (the GP's Gram matrix and the Cholesky factor):
     * after the first probe at a given size, later probes touch no
     * heap.
     */
    void reshape(size_t rows, size_t cols, double fill = 0.0);

    /** Maximum absolute element (infinity-ish norm for tests). */
    double maxAbs() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/** Dot product. @pre equal sizes */
double dot(const Vector& a, const Vector& b);

/** Euclidean norm. */
double norm2(const Vector& v);

/** a + b element-wise. @pre equal sizes */
Vector add(const Vector& a, const Vector& b);

/** a - b element-wise. @pre equal sizes */
Vector sub(const Vector& a, const Vector& b);

/** s * v. */
Vector scale(const Vector& v, double s);

/** a += s * b (axpy). @pre equal sizes */
void axpy(Vector& a, double s, const Vector& b);

} // namespace linalg
} // namespace clite

#endif // CLITE_LINALG_MATRIX_H

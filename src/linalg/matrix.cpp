#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace clite {
namespace linalg {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        CLITE_CHECK(r.size() == cols_, "ragged initializer: row of length "
                                           << r.size() << ", expected "
                                           << cols_);
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n, 0.0);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double&
Matrix::operator()(size_t r, size_t c)
{
    CLITE_ASSERT(r < rows_ && c < cols_,
                 "index (" << r << "," << c << ") out of " << rows_ << "x"
                           << cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(size_t r, size_t c) const
{
    CLITE_ASSERT(r < rows_ && c < cols_,
                 "index (" << r << "," << c << ") out of " << rows_ << "x"
                           << cols_);
    return data_[r * cols_ + c];
}

void
Matrix::reshape(size_t rows, size_t cols, double fill)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill); // keeps capacity when sufficient
}

Vector
Matrix::row(size_t r) const
{
    CLITE_CHECK(r < rows_, "row " << r << " out of " << rows_);
    return Vector(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_);
}

Vector
Matrix::col(size_t c) const
{
    CLITE_CHECK(c < cols_, "col " << c << " out of " << cols_);
    Vector v(rows_);
    for (size_t r = 0; r < rows_; ++r)
        v[r] = (*this)(r, c);
    return v;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Matrix
Matrix::operator*(const Matrix& rhs) const
{
    CLITE_CHECK(cols_ == rhs.rows_, "product shape mismatch: " << rows_ << "x"
                                        << cols_ << " * " << rhs.rows_ << "x"
                                        << rhs.cols_);
    Matrix out(rows_, rhs.cols_, 0.0);
    // ikj loop order keeps the inner loop streaming over contiguous rows.
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            const double* rrow = &rhs.data_[k * rhs.cols_];
            double* orow = &out.data_[i * out.cols_];
            for (size_t j = 0; j < rhs.cols_; ++j)
                orow[j] += a * rrow[j];
        }
    }
    return out;
}

Vector
Matrix::operator*(const Vector& v) const
{
    CLITE_CHECK(cols_ == v.size(), "matvec shape mismatch: " << rows_ << "x"
                                       << cols_ << " * " << v.size());
    Vector out(rows_, 0.0);
    for (size_t r = 0; r < rows_; ++r) {
        const double* row = &data_[r * cols_];
        double acc = 0.0;
        for (size_t c = 0; c < cols_; ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix
Matrix::operator+(const Matrix& rhs) const
{
    CLITE_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "sum shape mismatch");
    Matrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix& rhs) const
{
    CLITE_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "difference shape mismatch");
    Matrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= rhs.data_[i];
    return out;
}

Matrix
Matrix::operator*(double s) const
{
    Matrix out = *this;
    for (double& v : out.data_)
        v *= s;
    return out;
}

void
Matrix::addDiagonal(double s)
{
    CLITE_CHECK(rows_ == cols_, "addDiagonal requires a square matrix");
    for (size_t i = 0; i < rows_; ++i)
        data_[i * cols_ + i] += s;
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (double v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

double
dot(const Vector& a, const Vector& b)
{
    CLITE_CHECK(a.size() == b.size(), "dot size mismatch: " << a.size()
                                          << " vs " << b.size());
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
norm2(const Vector& v)
{
    return std::sqrt(dot(v, v));
}

Vector
add(const Vector& a, const Vector& b)
{
    CLITE_CHECK(a.size() == b.size(), "add size mismatch");
    Vector out = a;
    for (size_t i = 0; i < b.size(); ++i)
        out[i] += b[i];
    return out;
}

Vector
sub(const Vector& a, const Vector& b)
{
    CLITE_CHECK(a.size() == b.size(), "sub size mismatch");
    Vector out = a;
    for (size_t i = 0; i < b.size(); ++i)
        out[i] -= b[i];
    return out;
}

Vector
scale(const Vector& v, double s)
{
    Vector out = v;
    for (double& x : out)
        x *= s;
    return out;
}

void
axpy(Vector& a, double s, const Vector& b)
{
    CLITE_CHECK(a.size() == b.size(), "axpy size mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] += s * b[i];
}

} // namespace linalg
} // namespace clite

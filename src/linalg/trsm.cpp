#include "linalg/trsm.h"

#include <algorithm>

#include "common/error.h"

namespace clite {
namespace linalg {

namespace {

/**
 * Row-block size of the blocked substitution. A k-tile of Y
 * (kRowBlock rows × up-to-64 columns of doubles) is ~24 KiB — it stays
 * L1-resident while every row of the current i-tile consumes it, which
 * is where the blocking wins over the naive two-loop version once n
 * outgrows the cache.
 */
constexpr size_t kRowBlock = 48;

/** y_i ← y_i − L(i,k)·y_k over one contiguous row pair. */
inline void
subtractScaledRow(double* __restrict yi, const double* __restrict yk,
                  double lik, size_t ncols)
{
    for (size_t c = 0; c < ncols; ++c)
        yi[c] -= lik * yk[c];
}

} // namespace

void
solveLowerPanel(const Matrix& l, double* panel, size_t ncols)
{
    CLITE_CHECK(l.rows() == l.cols(),
                "solveLowerPanel needs a square factor, got "
                    << l.rows() << "x" << l.cols());
    solveLowerPanel(l.data().data(), l.cols(), l.rows(), panel, ncols);
}

void
solveLowerPanel(const double* lp, size_t ldl, size_t n, double* panel,
                size_t ncols)
{
    CLITE_CHECK(ldl >= n, "solveLowerPanel stride " << ldl
                              << " smaller than size " << n);
    if (n == 0 || ncols == 0)
        return;

    for (size_t i0 = 0; i0 < n; i0 += kRowBlock) {
        const size_t i1 = std::min(i0 + kRowBlock, n);

        // GEMM-style update: panel[i0:i1] −= L[i0:i1, k-tile]·Y[k-tile]
        // for every finished k-tile, ascending — each column sees its
        // subtractions in exactly the scalar order.
        for (size_t k0 = 0; k0 < i0; k0 += kRowBlock) {
            const size_t k1 = std::min(k0 + kRowBlock, i0);
            for (size_t i = i0; i < i1; ++i) {
                const double* lrow = lp + i * ldl;
                double* yi = panel + i * ncols;
                for (size_t k = k0; k < k1; ++k)
                    subtractScaledRow(yi, panel + k * ncols, lrow[k],
                                      ncols);
            }
        }

        // Diagonal tile: forward substitution within the block.
        for (size_t i = i0; i < i1; ++i) {
            const double* lrow = lp + i * ldl;
            double* yi = panel + i * ncols;
            for (size_t k = i0; k < i; ++k)
                subtractScaledRow(yi, panel + k * ncols, lrow[k], ncols);
            const double lii = lrow[i];
            for (size_t c = 0; c < ncols; ++c)
                yi[c] = yi[c] / lii;
        }
    }
}

void
panelDotRows(const double* panel, size_t n, size_t ncols,
             const double* alpha, double* out)
{
    for (size_t c = 0; c < ncols; ++c)
        out[c] = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double* row = panel + i * ncols;
        const double a = alpha[i];
        for (size_t c = 0; c < ncols; ++c)
            out[c] += row[c] * a;
    }
}

void
panelColumnSquaredNorms(const double* panel, size_t n, size_t ncols,
                        double* out)
{
    for (size_t c = 0; c < ncols; ++c)
        out[c] = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double* row = panel + i * ncols;
        for (size_t c = 0; c < ncols; ++c)
            out[c] += row[c] * row[c];
    }
}

} // namespace linalg
} // namespace clite

/**
 * @file
 * Cholesky factorization and SPD solves.
 *
 * The Gaussian-process surrogate performs all of its kernel algebra
 * through these routines: K = L Lᵀ, triangular solves for the posterior
 * mean/variance, and log|K| for the marginal likelihood. The
 * factorization retries with growing diagonal jitter so that nearly
 * singular kernel matrices (duplicate sample points) remain usable, as
 * is standard practice in GP implementations.
 *
 * Storage: the factor lives in a strided buffer whose leading
 * dimension is the capacity, not the logical size, so appendRow can
 * write the new row in place and grow by capacity doubling — one
 * append is O(n²) arithmetic with an amortized-O(1) allocation cost
 * instead of a fresh (n+1)×(n+1) copy every call.
 */

#ifndef CLITE_LINALG_CHOLESKY_H
#define CLITE_LINALG_CHOLESKY_H

#include <vector>

#include "linalg/matrix.h"

namespace clite {
namespace linalg {

/**
 * Lower-triangular Cholesky factor of a symmetric positive-definite
 * matrix, with solve and determinant helpers.
 */
class Cholesky
{
  public:
    /**
     * Factor A = L Lᵀ.
     *
     * @param a Symmetric positive-(semi)definite matrix.
     * @param jitter Initial diagonal jitter added when the plain
     *     factorization fails; grows by 10x up to max_jitter.
     * @param max_jitter Jitter ceiling before giving up.
     * @throws clite::Error if A is not SPD even with max jitter.
     */
    explicit Cholesky(const Matrix& a, double jitter = 1e-10,
                      double max_jitter = 1e-2);

    /**
     * Re-factor a new matrix into this object, with the constructor's
     * jitter-retry semantics but reusing the factor's storage when the
     * size fits the current capacity. This keeps hyper-fit probes —
     * which refactor the Gram matrix once per Nelder-Mead step —
     * allocation-free in steady state. Numerically identical to
     * constructing a fresh Cholesky(a, jitter, max_jitter).
     */
    void refactor(const Matrix& a, double jitter = 1e-10,
                  double max_jitter = 1e-2);

    /**
     * The lower-triangular factor L as a dense n×n matrix (zeros above
     * the diagonal). Materialized lazily from the strided buffer into a
     * cache that is reused across calls, so repeated reads at the same
     * size allocate nothing and keep a stable storage pointer. Not safe
     * to call concurrently with the first post-mutation read; the
     * concurrent hot paths (predict/predictBatch) read the strided
     * buffer directly via lowerData()/stride().
     */
    const Matrix& factor() const;

    /**
     * Raw strided factor storage: element (i, j) of L lives at
     * lowerData()[i * stride() + j]. Only the lower triangle (j <= i,
     * i < size()) is meaningful; cells above the diagonal are
     * unspecified. This is the zero-copy view the blocked panel solves
     * consume.
     */
    const double* lowerData() const { return data_.data(); }

    /** Leading dimension (row stride) of lowerData(). */
    size_t stride() const { return cap_; }

    /**
     * Rank-append: extend the factor of A to the factor of
     *
     *   A' = [[A, b], [bᵀ, c]]
     *
     * in O(n²) (one forward substitution plus one in-place row write;
     * capacity doubles amortized) instead of the O(n³) full
     * refactorization. The jitter that was applied when A was factored
     * is added to c so the extended factor matches what a from-scratch
     * factorization of A' + jitter·I produces, row for row — Cholesky
     * computes row i from rows < i only, so appending never perturbs
     * the existing rows.
     *
     * @param b Covariances of the new point against the existing n.
     * @param c Diagonal entry (self-covariance) of the new point.
     * @return false, leaving the factor unchanged, when the new pivot
     *     is not positive (nearly duplicate point) — the caller should
     *     fall back to a full factorization with fresh jitter.
     */
    bool appendRow(const Vector& b, double c);

    /** Jitter that was actually added to the diagonal (0 if none). */
    double appliedJitter() const { return applied_jitter_; }

    /** Solve L y = b (forward substitution). */
    Vector solveLower(const Vector& b) const;

    /** Solve Lᵀ x = b (backward substitution). */
    Vector solveUpper(const Vector& b) const;

    /** Solve A x = b via the two triangular solves. */
    Vector solve(const Vector& b) const;

    /**
     * Solve A x = b overwriting @p b with x — the same operation
     * sequence as solve() (forward then backward substitution, both in
     * place) with zero allocations, for callers that keep a persistent
     * solution vector.
     */
    void solveInPlace(Vector& b) const;

    /** log-determinant of A: 2 Σ log L_ii. */
    double logDet() const;

    /** Matrix size n (A is n x n). */
    size_t size() const { return n_; }

  private:
    /** Attempt the factorization; returns false on a non-positive pivot. */
    bool tryFactor(const Matrix& a, double jitter);

    /** Grow the strided buffer to hold an n×n factor (doubling). */
    void ensureCapacity(size_t n);

    std::vector<double> data_; ///< strided factor, leading dim cap_
    size_t n_ = 0;             ///< logical factor size
    size_t cap_ = 0;           ///< leading dimension / row capacity
    mutable Matrix l_;         ///< dense cache behind factor()
    mutable bool l_fresh_ = false;
    double applied_jitter_ = 0.0;
};

} // namespace linalg
} // namespace clite

#endif // CLITE_LINALG_CHOLESKY_H

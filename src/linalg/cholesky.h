/**
 * @file
 * Cholesky factorization and SPD solves.
 *
 * The Gaussian-process surrogate performs all of its kernel algebra
 * through these routines: K = L Lᵀ, triangular solves for the posterior
 * mean/variance, and log|K| for the marginal likelihood. The
 * factorization retries with growing diagonal jitter so that nearly
 * singular kernel matrices (duplicate sample points) remain usable, as
 * is standard practice in GP implementations.
 */

#ifndef CLITE_LINALG_CHOLESKY_H
#define CLITE_LINALG_CHOLESKY_H

#include "linalg/matrix.h"

namespace clite {
namespace linalg {

/**
 * Lower-triangular Cholesky factor of a symmetric positive-definite
 * matrix, with solve and determinant helpers.
 */
class Cholesky
{
  public:
    /**
     * Factor A = L Lᵀ.
     *
     * @param a Symmetric positive-(semi)definite matrix.
     * @param jitter Initial diagonal jitter added when the plain
     *     factorization fails; grows by 10x up to max_jitter.
     * @param max_jitter Jitter ceiling before giving up.
     * @throws clite::Error if A is not SPD even with max jitter.
     */
    explicit Cholesky(const Matrix& a, double jitter = 1e-10,
                      double max_jitter = 1e-2);

    /**
     * Re-factor a new matrix into this object, with the constructor's
     * jitter-retry semantics but reusing the factor's storage when the
     * size is unchanged. This keeps hyper-fit probes — which refactor
     * the Gram matrix once per Nelder-Mead step — allocation-free in
     * steady state. Numerically identical to constructing a fresh
     * Cholesky(a, jitter, max_jitter).
     */
    void refactor(const Matrix& a, double jitter = 1e-10,
                  double max_jitter = 1e-2);

    /** The lower-triangular factor L. */
    const Matrix& factor() const { return l_; }

    /**
     * Rank-append: extend the factor of A to the factor of
     *
     *   A' = [[A, b], [bᵀ, c]]
     *
     * in O(n²) (one forward substitution plus a copy-grow of L)
     * instead of the O(n³) full refactorization. The jitter that was
     * applied when A was factored is added to c so the extended factor
     * matches what a from-scratch factorization of A' + jitter·I
     * produces, row for row — Cholesky computes row i from rows < i
     * only, so appending never perturbs the existing rows.
     *
     * @param b Covariances of the new point against the existing n.
     * @param c Diagonal entry (self-covariance) of the new point.
     * @return false, leaving the factor unchanged, when the new pivot
     *     is not positive (nearly duplicate point) — the caller should
     *     fall back to a full factorization with fresh jitter.
     */
    bool appendRow(const Vector& b, double c);

    /** Jitter that was actually added to the diagonal (0 if none). */
    double appliedJitter() const { return applied_jitter_; }

    /** Solve L y = b (forward substitution). */
    Vector solveLower(const Vector& b) const;

    /** Solve Lᵀ x = b (backward substitution). */
    Vector solveUpper(const Vector& b) const;

    /** Solve A x = b via the two triangular solves. */
    Vector solve(const Vector& b) const;

    /**
     * Solve A x = b overwriting @p b with x — the same operation
     * sequence as solve() (forward then backward substitution, both in
     * place) with zero allocations, for callers that keep a persistent
     * solution vector.
     */
    void solveInPlace(Vector& b) const;

    /** log-determinant of A: 2 Σ log L_ii. */
    double logDet() const;

    /** Matrix size n (A is n x n). */
    size_t size() const { return l_.rows(); }

  private:
    /** Attempt the factorization; returns false on a non-positive pivot. */
    bool tryFactor(const Matrix& a, double jitter);

    Matrix l_;
    double applied_jitter_ = 0.0;
};

} // namespace linalg
} // namespace clite

#endif // CLITE_LINALG_CHOLESKY_H

#include "harness/analysis.h"

#include "common/error.h"
#include "stats/summary.h"

namespace clite {
namespace harness {

double
meanLcPerformance(const std::vector<platform::JobObservation>& obs)
{
    stats::RunningStats rs;
    for (const auto& ob : obs)
        if (ob.is_lc)
            rs.add(ob.perfNorm());
    return rs.count() ? rs.mean() : 0.0;
}

double
meanBgPerformance(const std::vector<platform::JobObservation>& obs)
{
    stats::RunningStats rs;
    for (const auto& ob : obs)
        if (!ob.is_lc)
            rs.add(ob.perfNorm());
    return rs.count() ? rs.mean() : 0.0;
}

VariabilityResult
runVariability(const std::string& scheme, const ServerSpec& spec,
               int trials)
{
    CLITE_CHECK(trials >= 2, "variability needs >= 2 trials");

    stats::RunningStats perf;
    stats::RunningStats score;
    std::vector<double> perf_samples;
    for (int t = 0; t < trials; ++t) {
        ServerSpec s = spec;
        s.seed = spec.seed + uint64_t(t) * 7919;
        SchemeOutcome out = runScheme(scheme, s, 100 + uint64_t(t) * 104729);
        double p = meanLcPerformance(out.truth_obs);
        perf.add(p);
        perf_samples.push_back(p);
        score.add(out.truth.score);
    }

    VariabilityResult r;
    r.scheme = scheme;
    r.trials = trials;
    r.mean_perf = perf.mean();
    r.cov_percent = perf.coefficientOfVariation() * 100.0;
    r.mean_score = score.mean();
    r.score_cov_percent = score.coefficientOfVariation() * 100.0;
    r.perf_ci = stats::bootstrapMeanCI(perf_samples, 0.95, 1000,
                                       spec.seed * 7 + 13);
    return r;
}

ConvergenceTrace
traceConvergence(const std::string& scheme, const ServerSpec& spec,
                 uint64_t seed)
{
    platform::SimulatedServer server = makeServer(spec);
    std::unique_ptr<core::Controller> ctl = makeScheme(scheme, seed);
    core::ControllerResult result = ctl->run(server);

    ConvergenceTrace trace;
    trace.scheme = scheme;
    trace.first_feasible = result.firstFeasibleSample() >= 0
                               ? result.firstFeasibleSample() + 1
                               : -1;
    int n = 1;
    for (const auto& rec : result.trace) {
        ConvergenceStep step;
        step.sample = n++;
        step.score = rec.score;
        step.all_qos_met = rec.all_qos_met;
        step.bg_perf = meanBgPerformance(rec.observations);
        for (size_t r = 0; r < rec.alloc.resources(); ++r)
            step.alloc_row0.push_back(rec.alloc.get(0, r));
        trace.steps.push_back(std::move(step));
        trace.allocations.push_back(rec.alloc);
    }
    return trace;
}

} // namespace harness
} // namespace clite

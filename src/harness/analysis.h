/**
 * @file
 * Shared evaluation analyses:
 *
 *  - meanLcPerformance / meanBgPerformance: the Fig. 10/12/13/14
 *    aggregates (average normalized performance of the LC or BG jobs
 *    of a final configuration).
 *  - VariabilityResult / runVariability: the Fig. 11 repeated-trials
 *    analysis (stddev as % of mean of the achieved performance across
 *    runs of the same scheme on the same mix).
 *  - ConvergenceTrace / traceConvergence: the Fig. 9b / 15b per-sample
 *    view of a scheme's search (allocations and BG performance over
 *    sample number).
 */

#ifndef CLITE_HARNESS_ANALYSIS_H
#define CLITE_HARNESS_ANALYSIS_H

#include <string>
#include <vector>

#include "harness/schemes.h"
#include "stats/summary.h"

namespace clite {
namespace harness {

/**
 * Arithmetic-mean normalized performance of the LC jobs of an
 * observation vector (Fig. 10's y-axis before oracle normalization).
 */
double meanLcPerformance(
    const std::vector<platform::JobObservation>& obs);

/** Arithmetic-mean normalized performance of the BG jobs. */
double meanBgPerformance(
    const std::vector<platform::JobObservation>& obs);

/** Repeated-trials variability of one scheme on one mix (Fig. 11). */
struct VariabilityResult
{
    std::string scheme;      ///< Scheme evaluated.
    int trials = 0;          ///< Number of runs.
    double mean_perf = 0.0;  ///< Mean of achieved mean-LC-performance.
    double cov_percent = 0.0;///< Stddev as % of mean.
    double mean_score = 0.0; ///< Mean Eq. 3 truth score.
    /** Stddev of the truth score as % of its mean — the headline
     *  variability metric (equal-score configurations are equally
     *  good even when they split LC slack differently). */
    double score_cov_percent = 0.0;
    /** 95% bootstrap CI of the mean achieved performance. */
    stats::ConfidenceInterval perf_ci;
};

/**
 * Run @p scheme @p trials times on fresh servers (different noise and
 * controller seeds) and summarize the spread of the achieved
 * performance.
 */
VariabilityResult runVariability(const std::string& scheme,
                                 const ServerSpec& spec, int trials);

/** One per-sample step of a scheme's search. */
struct ConvergenceStep
{
    int sample = 0;            ///< Sample number (1-based).
    double score = 0.0;        ///< Observed Eq. 3 score.
    bool all_qos_met = false;  ///< QoS state at this sample.
    double bg_perf = 0.0;      ///< Mean BG normalized perf (noisy).
    std::vector<int> alloc_row0; ///< Allocation of job 0 (per resource).
};

/** Full convergence trace of one run. */
struct ConvergenceTrace
{
    std::string scheme;
    std::vector<ConvergenceStep> steps;
    int first_feasible = -1;   ///< 1-based sample first meeting QoS.
    /** Per-sample allocation matrix snapshots (job-major rows). */
    std::vector<platform::Allocation> allocations;
};

/** Run @p scheme once and expose its search step by step. */
ConvergenceTrace traceConvergence(const std::string& scheme,
                                  const ServerSpec& spec,
                                  uint64_t seed = 7);

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_ANALYSIS_H

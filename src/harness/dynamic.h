/**
 * @file
 * Dynamic-load adaptation scenario (Fig. 16).
 *
 * One LC job's load steps through a schedule (the paper steps
 * memcached from 10% to 30% with img-dnn and masstree pinned at 10%
 * and fluidanimate in the background). After every load change CLITE
 * is re-invoked, seeded with the incumbent configuration; the harness
 * records the allocations and BG performance over (sample-numbered)
 * time, showing the exploration dip and re-stabilization.
 */

#ifndef CLITE_HARNESS_DYNAMIC_H
#define CLITE_HARNESS_DYNAMIC_H

#include <string>
#include <vector>

#include "core/clite.h"
#include "core/monitor.h"
#include "harness/schemes.h"
#include "workloads/load_trace.h"

namespace clite {
namespace harness {

/** One timeline entry of the dynamic run. */
struct DynamicStep
{
    int sample = 0;          ///< Global observation-window number.
    double changed_load = 0; ///< Load of the stepped job at this time.
    bool all_qos_met = false;///< QoS state.
    double bg_perf = 0.0;    ///< Mean BG normalized performance.
    bool exploring = false;  ///< True while the controller searches.
    std::vector<std::vector<int>> alloc; ///< Full job x resource matrix.
};

/** Outcome of the dynamic scenario. */
struct DynamicResult
{
    std::vector<DynamicStep> timeline; ///< Every observation window.
    std::vector<int> stabilization_samples; ///< Samples to re-stabilize
                                            ///< after each load step.
    bool all_phases_feasible = true; ///< QoS met at every stable point.
};

/**
 * Run the Fig. 16 scenario.
 *
 * @param spec Server spec; jobs[changed_job] must be LC.
 * @param changed_job Index of the job whose load steps.
 * @param load_schedule Successive loads (first entry is the initial
 *     load; each later entry triggers a re-optimization).
 * @param settle_windows Stable observation windows recorded between
 *     load steps.
 * @param options CLITE options for the controller.
 */
DynamicResult runDynamicScenario(const ServerSpec& spec, size_t changed_job,
                                 const std::vector<double>& load_schedule,
                                 int settle_windows = 5,
                                 const core::CliteOptions& options = {});

/** One monitored window of a trace replay. */
struct ReplayWindow
{
    double time_s = 0.0;      ///< Wall-clock of this window.
    double load = 0.0;        ///< Trace load in effect.
    bool all_qos_met = false; ///< QoS state observed.
    double score = 0.0;       ///< Eq. 3 score observed.
    bool reoptimized = false; ///< A re-optimization ran this window.
    std::string reason;       ///< Trigger, when reoptimized.
    double worst_p95_ratio = 0.0; ///< Worst LC p95/target this window.
    double worst_p99_ratio = 0.0; ///< Worst LC p99/target this window.
};

/** Outcome of a trace replay through the OnlineManager. */
struct TraceReplayResult
{
    std::vector<ReplayWindow> windows; ///< Every monitoring window.
    int reoptimizations = 0;           ///< Searches triggered.
    double qos_met_fraction = 0.0;     ///< Fraction of windows with QoS.
    /** Fraction of fault-free windows with a p95 QoS violation. */
    double violating_window_fraction = 0.0;
    int transients_ridden = 0; ///< Violation bursts ridden out.
    int sustained_shifts = 0;  ///< Ridden shifts that forced a search.
};

/**
 * Drive one LC job's load from @p trace while the OnlineManager
 * monitors and re-invokes CLITE (the steady-state production loop).
 *
 * @param spec Server spec; jobs[traced_job] must be LC.
 * @param traced_job Job whose load follows the trace.
 * @param trace Load trace.
 * @param duration_s Total replay time.
 * @param window_s Observation window length (the paper's 2 s).
 * @param clite_options CLITE knobs.
 * @param monitor_options Monitoring knobs.
 */
TraceReplayResult replayLoadTrace(
    const ServerSpec& spec, size_t traced_job,
    const workloads::LoadTrace& trace, double duration_s,
    double window_s = 2.0, const core::CliteOptions& clite_options = {},
    const core::MonitorOptions& monitor_options = {});

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_DYNAMIC_H

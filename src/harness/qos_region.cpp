#include "harness/qos_region.h"

#include "common/error.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace harness {

size_t
QosRegion::safeCount() const
{
    size_t n = 0;
    for (const auto& row : safe)
        for (bool s : row)
            n += s ? 1 : 0;
    return n;
}

bool
QosRegion::hasEquivalenceTradeoff() const
{
    // Look for two safe cells (a1,b1), (a2,b2) with a1 < a2, b1 > b2.
    for (size_t b1 = 0; b1 < safe.size(); ++b1)
        for (size_t a1 = 0; a1 < safe[b1].size(); ++a1) {
            if (!safe[b1][a1])
                continue;
            for (size_t b2 = 0; b2 < b1; ++b2)
                for (size_t a2 = a1 + 1; a2 < safe[b2].size(); ++a2)
                    if (safe[b2][a2])
                        return true;
        }
    return false;
}

QosRegion
mapQosRegion(const std::string& workload, double load,
             platform::Resource res_a, platform::Resource res_b)
{
    CLITE_CHECK(res_a != res_b, "QoS region needs two distinct resources");

    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    workloads::WorkloadProfile profile = workloads::lcWorkload(workload);
    workloads::JobSpec job{profile, load};
    workloads::AnalyticModel model;
    Rng rng(0);

    const size_t ia = config.indexOf(res_a);
    const size_t ib = config.indexOf(res_b);

    QosRegion region;
    region.workload = workload;
    region.load_fraction = load;
    region.res_a = res_a;
    region.res_b = res_b;
    for (int u = 1; u <= config.resource(ia).units; ++u)
        region.a_units.push_back(u);
    for (int u = 1; u <= config.resource(ib).units; ++u)
        region.b_units.push_back(u);

    region.safe.assign(region.b_units.size(),
                       std::vector<bool>(region.a_units.size(), false));
    for (size_t bi = 0; bi < region.b_units.size(); ++bi) {
        for (size_t ai = 0; ai < region.a_units.size(); ++ai) {
            std::vector<int> units(config.resourceCount());
            for (size_t r = 0; r < config.resourceCount(); ++r)
                units[r] = config.resource(r).units; // others at full
            units[ia] = region.a_units[ai];
            units[ib] = region.b_units[bi];
            workloads::JobMeasurement m =
                model.measure(job, units, config, rng);
            region.safe[bi][ai] = m.p95_ms <= profile.qos_p95_ms;
        }
    }
    return region;
}

} // namespace harness
} // namespace clite

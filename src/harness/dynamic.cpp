#include "harness/dynamic.h"

#include "common/error.h"
#include "harness/analysis.h"
#include "workloads/traffic/traffic.h"

namespace clite {
namespace harness {

namespace {

/** Snapshot one controller sample into the timeline. */
DynamicStep
toStep(int sample, double load, bool exploring,
       const core::SampleRecord& rec)
{
    DynamicStep step;
    step.sample = sample;
    step.changed_load = load;
    step.all_qos_met = rec.all_qos_met;
    step.bg_perf = meanBgPerformance(rec.observations);
    step.exploring = exploring;
    for (size_t j = 0; j < rec.alloc.jobs(); ++j) {
        std::vector<int> row;
        for (size_t r = 0; r < rec.alloc.resources(); ++r)
            row.push_back(rec.alloc.get(j, r));
        step.alloc.push_back(std::move(row));
    }
    return step;
}

} // namespace

DynamicResult
runDynamicScenario(const ServerSpec& spec, size_t changed_job,
                   const std::vector<double>& load_schedule,
                   int settle_windows, const core::CliteOptions& options)
{
    CLITE_CHECK(load_schedule.size() >= 2,
                "dynamic scenario needs at least two load phases");
    CLITE_CHECK(changed_job < spec.jobs.size(),
                "changed_job out of range");
    CLITE_CHECK(spec.jobs[changed_job].isLatencyCritical(),
                "the stepped job must be latency-critical");

    ServerSpec init = spec;
    init.jobs[changed_job].load_fraction = load_schedule[0];
    platform::SimulatedServer server = makeServer(init);
    core::CliteController clite(options);

    DynamicResult out;
    int sample = 0;

    auto record_run = [&](const core::ControllerResult& r, double load) {
        for (const auto& rec : r.trace)
            out.timeline.push_back(toStep(++sample, load, true, rec));
        out.stabilization_samples.push_back(int(r.trace.size()));
        // Stable windows at the chosen configuration. The timeline
        // logs the noisy per-window measurements; the phase verdict
        // uses the noise-free ground truth so a single unlucky window
        // does not mislabel a genuinely feasible phase.
        for (int w = 0; w < settle_windows; ++w) {
            std::vector<platform::JobObservation> obs = server.observe();
            core::ScoreBreakdown sb = core::scoreObservations(obs);
            core::SampleRecord rec(server.currentAllocation(), sb.score,
                                   sb.all_qos_met, obs);
            out.timeline.push_back(toStep(++sample, load, false, rec));
        }
        core::ScoreBreakdown truth = core::scoreObservations(
            server.observeNoiseless(server.currentAllocation()));
        out.all_phases_feasible =
            out.all_phases_feasible && truth.all_qos_met;
    };

    // Initial optimization.
    core::ControllerResult r = clite.run(server);
    record_run(r, load_schedule[0]);
    platform::Allocation incumbent = *r.best;

    // Load steps: CLITE is re-invoked on each change (Sec. 4: "if the
    // observed performance or the job mix changes, CLITE can be
    // reinvoked").
    for (size_t phase = 1; phase < load_schedule.size(); ++phase) {
        server.setLoad(changed_job, load_schedule[phase]);
        core::ControllerResult rr = clite.reoptimize(server, incumbent);
        record_run(rr, load_schedule[phase]);
        incumbent = *rr.best;
    }
    return out;
}

TraceReplayResult
replayLoadTrace(const ServerSpec& spec, size_t traced_job,
                const workloads::LoadTrace& trace, double duration_s,
                double window_s, const core::CliteOptions& clite_options,
                const core::MonitorOptions& monitor_options)
{
    CLITE_CHECK(traced_job < spec.jobs.size(), "traced_job out of range");
    CLITE_CHECK(spec.jobs[traced_job].isLatencyCritical(),
                "the traced job must be latency-critical");
    CLITE_CHECK(duration_s > 0.0 && window_s > 0.0,
                "duration and window must be > 0");

    ServerSpec init = spec;
    init.jobs[traced_job].load_fraction = trace.loadAt(0.0);
    // Stamp the trace identity so mix signatures (and therefore the
    // warm-start store) key this job by trace kind + mean load rather
    // than whatever instantaneous load the replay started at.
    if (init.jobs[traced_job].trace_kind.empty()) {
        init.jobs[traced_job].trace_kind = trace.name();
        init.jobs[traced_job].trace_mean_load =
            workloads::traffic::traceMeanLoad(trace, duration_s, window_s);
    }
    platform::SimulatedServer server = makeServer(init);
    core::OnlineManager manager(server, clite_options, monitor_options);
    manager.initialize();

    TraceReplayResult out;
    int met = 0;
    for (double t = 0.0; t < duration_s; t += window_s) {
        server.setLoad(traced_job, trace.loadAt(t));
        core::OnlineManager::Tick tick = manager.tick();

        ReplayWindow w;
        w.time_s = t;
        w.load = trace.loadAt(t);
        w.all_qos_met = tick.all_qos_met;
        w.score = tick.score;
        w.reoptimized = tick.reoptimized;
        w.reason = tick.reason;
        out.windows.push_back(std::move(w));
        met += tick.all_qos_met ? 1 : 0;
    }
    // Every tick records exactly one WindowQos entry; zip the ratio
    // series back onto the timeline.
    const std::vector<core::WindowQos>& qos = manager.qosTimeline();
    if (qos.size() == out.windows.size()) {
        for (size_t i = 0; i < qos.size(); ++i) {
            out.windows[i].worst_p95_ratio = qos[i].worst_p95_ratio;
            out.windows[i].worst_p99_ratio = qos[i].worst_p99_ratio;
        }
    }
    out.reoptimizations = manager.reoptimizations();
    out.qos_met_fraction =
        out.windows.empty() ? 0.0 : double(met) / double(out.windows.size());
    out.violating_window_fraction = manager.violatingWindowFraction();
    out.transients_ridden = manager.transientsRidden();
    out.sustained_shifts = manager.sustainedShifts();
    return out;
}

} // namespace harness
} // namespace clite

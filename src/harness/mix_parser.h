/**
 * @file
 * Textual job-mix specifications for the CLI driver and scripts.
 *
 * Grammar (comma-separated job terms):
 *
 *   mix     := job ("," job)*
 *   job     := lc_job | bg_job
 *   lc_job  := NAME "@" LOAD        e.g. "memcached@40%" or
 *                                        "img-dnn@0.3"
 *   bg_job  := NAME                 e.g. "streamcluster"
 *
 * Names resolve against the workload catalog; loads accept both
 * percentages ("40%") and fractions ("0.4").
 */

#ifndef CLITE_HARNESS_MIX_PARSER_H
#define CLITE_HARNESS_MIX_PARSER_H

#include <string>
#include <vector>

#include "workloads/profile.h"

namespace clite {
namespace harness {

/**
 * Parse a mix specification into job specs.
 *
 * @param text e.g. "img-dnn@30%,memcached@40%,streamcluster".
 * @throws clite::Error on syntax errors, unknown workloads, loads
 *     outside (0, 100%], or an LC load on a BG workload (and vice
 *     versa: an LC workload without a load).
 */
std::vector<workloads::JobSpec> parseMix(const std::string& text);

/** Render a job list back into the mix grammar (round-trips parseMix). */
std::string formatMix(const std::vector<workloads::JobSpec>& jobs);

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_MIX_PARSER_H

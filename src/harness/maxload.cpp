#include "harness/maxload.h"

#include <algorithm>

#include "common/error.h"
#include "common/thread_pool.h"
#include "workloads/catalog.h"

namespace clite {
namespace harness {

namespace {

/** Does the scheme co-locate the mix with the probe at loads[idx]? */
bool
feasibleAt(const std::string& scheme, const MaxLoadQuery& query,
           double probe_load)
{
    ServerSpec spec;
    spec.jobs = query.fixed_jobs;
    spec.jobs.push_back(workloads::lcJob(query.probe_workload, probe_load));
    spec.backend = query.backend;
    spec.noise_sigma = query.noise_sigma;
    spec.seed = query.seed;
    SchemeOutcome out = runScheme(scheme, spec, query.seed);
    return out.truth.all_qos_met;
}

} // namespace

double
maxSupportedLoad(const std::string& scheme, const MaxLoadQuery& query)
{
    CLITE_CHECK(!query.probe_loads.empty(), "no probe loads given");
    std::vector<double> loads = query.probe_loads;
    std::sort(loads.begin(), loads.end());

    // Binary search for the feasibility frontier (co-location
    // difficulty is monotone in the probe load).
    int lo = -1;                  // highest known-feasible index
    int hi = int(loads.size());  // lowest known-infeasible index
    while (hi - lo > 1) {
        int mid = (lo + hi) / 2;
        if (feasibleAt(scheme, query, loads[size_t(mid)]))
            lo = mid;
        else
            hi = mid;
    }
    return lo >= 0 ? loads[size_t(lo)] : 0.0;
}

LoadHeatmap
maxLoadHeatmap(const std::string& scheme, const std::string& x_job,
               const std::string& y_job,
               const std::vector<double>& grid_loads,
               const std::string& probe,
               const std::vector<std::string>& extra_bg, double noise_sigma)
{
    CLITE_CHECK(!grid_loads.empty(), "empty heatmap grid");

    LoadHeatmap map;
    map.scheme = scheme;
    map.x_loads = grid_loads;
    map.y_loads = grid_loads;
    map.cell.assign(grid_loads.size(),
                    std::vector<double>(grid_loads.size(), 0.0));

    // Every cell is an independent search with its own seed, so the
    // sweep fans out on the global thread pool; each task writes only
    // its own cell, making the heatmap bit-identical to a serial run
    // regardless of scheduling (and of --threads).
    const size_t g = grid_loads.size();
    globalPool().parallelFor(g * g, [&](size_t idx) {
        const size_t yi = idx / g, xi = idx % g;
        MaxLoadQuery q;
        q.fixed_jobs = {
            workloads::lcJob(x_job, grid_loads[xi]),
            workloads::lcJob(y_job, grid_loads[yi]),
        };
        for (const auto& bg : extra_bg)
            q.fixed_jobs.push_back(workloads::bgJob(bg));
        q.probe_workload = probe;
        q.noise_sigma = noise_sigma;
        // Per-cell seed so noise realizations differ across cells.
        q.seed = 1000 + yi * g + xi;
        map.cell[yi][xi] = maxSupportedLoad(scheme, q);
    });
    return map;
}

} // namespace harness
} // namespace clite

/**
 * @file
 * Resilience evaluation harness: run any scheme under a declarative
 * fault plan and quantify how gracefully it degrades.
 *
 * The paper evaluates CLITE on a well-behaved testbed; production
 * servers are not so polite — telemetry windows get lost, counters
 * freeze, cgroup/CAT writes fail transiently, knobs die, jobs crash.
 * This harness attaches a seeded FaultInjector to the evaluation
 * server, runs the scheme's full search, then scores the partition
 * the server was actually left programmed with against the noise-free
 * (and fault-free) ground truth. Comparing that score to the same
 * scheme's fault-free run on the same mix and seed yields the score
 * degradation attributable to the faults alone.
 *
 * faultRateSweep() drives the fig_resilience bench: one row per
 * (scheme, fault rate) with QoS-violation windows, wasted samples,
 * ground-truth score and degradation, so CLITE's fault-tolerant
 * control path can be compared against baselines that lack one.
 */

#ifndef CLITE_HARNESS_RESILIENCE_H
#define CLITE_HARNESS_RESILIENCE_H

#include <string>
#include <vector>

#include "harness/schemes.h"
#include "platform/faults.h"

namespace clite {
namespace harness {

/** One resilience run: a scheme, a mix, and a fault plan. */
struct ResilienceSpec
{
    ServerSpec server;          ///< Mix / backend / noise / seed.
    std::string scheme = "clite"; ///< Scheme name (see makeScheme()).
    platform::FaultPlan plan;   ///< Faults to inject (empty = clean).
    uint64_t fault_seed = 0xFA5715EEDull; ///< FaultInjector seed.
    uint64_t seed = 7;          ///< Controller seed.
};

/** Outcome of one resilience run. */
struct ResilienceOutcome
{
    core::ControllerResult result; ///< Search outcome under faults.
    /** The scheme produced a configuration at all. */
    bool found_config = false;
    /**
     * Noise-free, fault-free ground-truth score of the partition the
     * server ended up programmed with (0 when none was found).
     */
    double truth_score = 0.0;
    /** Ground truth: does the final partition meet every LC QoS? */
    bool truth_qos_met = false;
    /** Search windows whose telemetry described a QoS violation. */
    int violation_windows = 0;
    /** Quarantined samples + apply retries (see wastedSamples()). */
    int wasted_samples = 0;
    /** Fault events the injector actually delivered. */
    int fault_events = 0;
    /** Total samples the search spent. */
    int samples = 0;
};

/**
 * Run @p spec.scheme on a fresh server with @p spec.plan injected.
 * Unlike runScheme(), a search that produces no configuration is a
 * reported outcome (found_config = false), not an error — that IS the
 * failure mode being measured.
 */
ResilienceOutcome runResilient(const ResilienceSpec& spec);

/**
 * A fault plan whose event probabilities all scale with one knob:
 * apply failures at @p rate, measurement dropouts and latency spikes
 * at rate/2, frozen counters at rate/4. Crashes and knob losses are
 * scripted faults and stay off — sweep those separately.
 */
platform::FaultPlan scaledFaultPlan(double rate);

/** One row of a fault-rate sweep. */
struct ResilienceSweepRow
{
    std::string scheme;
    double fault_rate = 0.0;
    ResilienceOutcome outcome;
    /**
     * truth_score drop relative to the same scheme's clean run
     * (rate 0) on the same mix and seed; 0 for the clean run itself.
     */
    double score_degradation = 0.0;
};

/**
 * Run each scheme at each fault rate (rows ordered scheme-major, the
 * clean rate-0 run first so degradation has its baseline).
 */
std::vector<ResilienceSweepRow>
faultRateSweep(const std::vector<std::string>& schemes,
               const ServerSpec& server, const std::vector<double>& rates,
               uint64_t seed = 7);

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_RESILIENCE_H

/**
 * @file
 * Scheme registry and server factory for the evaluation harness.
 *
 * Every bench builds servers and controllers through these helpers so
 * that workload mixes, model backends, seeds and policy options are
 * specified in one place and the figure benches stay declarative.
 */

#ifndef CLITE_HARNESS_SCHEMES_H
#define CLITE_HARNESS_SCHEMES_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "platform/server.h"
#include "workloads/profile.h"

namespace clite {
namespace harness {

/** Which performance-model backend a server should use. */
enum class ModelBackend { Analytic, Des };

/** Server construction parameters. */
struct ServerSpec
{
    std::vector<workloads::JobSpec> jobs; ///< Co-located jobs.
    ModelBackend backend = ModelBackend::Analytic; ///< Model backend.
    bool all_resources = false; ///< 6-resource config instead of 3.
    double noise_sigma = 0.03;  ///< Measurement noise.
    uint64_t seed = 1;          ///< Noise/DES seed.
};

/** Build a SimulatedServer from a spec. */
platform::SimulatedServer makeServer(const ServerSpec& spec);

/**
 * Factory for a controller by scheme name with per-run seed:
 * "clite" | "parties" | "heracles" | "rand+" | "genetic" | "oracle".
 * @throws clite::Error for an unknown name.
 */
std::unique_ptr<core::Controller> makeScheme(const std::string& name,
                                             uint64_t seed = 7);

/** The scheme names in the paper's comparison order. */
const std::vector<std::string>& allSchemeNames();

/**
 * Run @p scheme on a fresh server built from @p spec and return the
 * pair (controller result, ground-truth score breakdown of the final
 * configuration evaluated noise-free).
 */
struct SchemeOutcome
{
    core::ControllerResult result;   ///< Search outcome.
    core::ScoreBreakdown truth;      ///< Noise-free score of the winner.
    std::vector<platform::JobObservation> truth_obs; ///< Per-job truth.
    uint64_t samples_applied = 0;    ///< Server apply() count.
};

SchemeOutcome runScheme(const std::string& scheme, const ServerSpec& spec,
                        uint64_t seed = 7);

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_SCHEMES_H

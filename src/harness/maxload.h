/**
 * @file
 * Maximum-supported-load analysis (Figs. 7, 8, 12).
 *
 * The paper's co-location heatmaps ask: holding the other co-located
 * jobs at fixed loads, what is the highest load (in 10% steps) of one
 * probe LC job for which a scheme still finds a configuration meeting
 * EVERY LC job's QoS? maxSupportedLoad answers that per scheme; the
 * heatmap helpers sweep two other jobs' loads over a grid. Heatmap
 * cells are independent seeded searches and run in parallel on the
 * global thread pool (common/thread_pool.h) with results bit-identical
 * to a serial sweep.
 */

#ifndef CLITE_HARNESS_MAXLOAD_H
#define CLITE_HARNESS_MAXLOAD_H

#include <string>
#include <vector>

#include "harness/schemes.h"

namespace clite {
namespace harness {

/** Parameters of a max-load probe. */
struct MaxLoadQuery
{
    std::vector<workloads::JobSpec> fixed_jobs; ///< Jobs at fixed loads.
    std::string probe_workload;  ///< LC app whose max load is sought.
    std::vector<double> probe_loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
    ModelBackend backend = ModelBackend::Analytic;
    double noise_sigma = 0.03; ///< Measurement noise during search.
    uint64_t seed = 7;         ///< Controller + server seed.
};

/**
 * Highest probe load the scheme supports, judged on the ground truth
 * (noise-free) QoS of the configuration the scheme settles on.
 *
 * @return The supported load fraction, or 0 when even the lowest
 *     probe load cannot be co-located by this scheme.
 */
double maxSupportedLoad(const std::string& scheme,
                        const MaxLoadQuery& query);

/** One heatmap of max supported load over a 2-D load grid. */
struct LoadHeatmap
{
    std::string scheme;           ///< Scheme evaluated.
    std::vector<double> x_loads;  ///< Loads of the x-axis job.
    std::vector<double> y_loads;  ///< Loads of the y-axis job.
    /** cell[yi][xi] = max supported probe load (0 = co-location impossible). */
    std::vector<std::vector<double>> cell;
};

/**
 * Sweep two jobs' loads over a grid and compute the probe's max
 * supported load in every cell (Figs. 7/8 layout: x = job A load,
 * y = job B load, cell value = max probe load).
 *
 * @param scheme Scheme name.
 * @param x_job LC app on the x axis.
 * @param y_job LC app on the y axis.
 * @param grid_loads Loads for both axes.
 * @param probe The probe LC app (memcached in Figs. 7/8).
 * @param extra_bg Optional BG jobs added to every cell (Fig. 8).
 * @param noise_sigma Measurement noise during the search.
 */
LoadHeatmap maxLoadHeatmap(const std::string& scheme,
                           const std::string& x_job,
                           const std::string& y_job,
                           const std::vector<double>& grid_loads,
                           const std::string& probe,
                           const std::vector<std::string>& extra_bg = {},
                           double noise_sigma = 0.03);

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_MAXLOAD_H

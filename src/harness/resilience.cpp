#include "harness/resilience.h"

#include <memory>

#include "common/error.h"

namespace clite {
namespace harness {

ResilienceOutcome
runResilient(const ResilienceSpec& spec)
{
    spec.plan.validate();
    platform::SimulatedServer server = makeServer(spec.server);
    auto injector = std::make_shared<platform::FaultInjector>(
        spec.plan, spec.fault_seed);
    server.setFaultInjector(injector);

    std::unique_ptr<core::Controller> ctl =
        makeScheme(spec.scheme, spec.seed);

    ResilienceOutcome out;
    out.result = ctl->run(server);
    out.found_config = out.result.best.has_value();
    out.samples = out.result.samples;
    out.wasted_samples = out.result.wastedSamples();
    out.fault_events = int(injector->events().size());
    for (const auto& rec : out.result.trace)
        if (rec.usable() && !rec.all_qos_met)
            ++out.violation_windows;

    if (out.found_config) {
        // Ground truth of the partition the server was left running:
        // observeNoiseless() bypasses both measurement noise and the
        // fault injector.
        core::ScoreBreakdown truth = core::scoreObservations(
            server.observeNoiseless(*out.result.best));
        out.truth_score = truth.score;
        out.truth_qos_met = truth.all_qos_met;
    }
    return out;
}

platform::FaultPlan
scaledFaultPlan(double rate)
{
    CLITE_CHECK(rate >= 0.0 && rate <= 1.0,
                "fault rate must be in [0, 1], got " << rate);
    platform::FaultPlan plan;
    plan.apply_fail_prob = rate;
    plan.dropout_prob = rate / 2.0;
    plan.spike_prob = rate / 2.0;
    plan.freeze_prob = rate / 4.0;
    return plan;
}

std::vector<ResilienceSweepRow>
faultRateSweep(const std::vector<std::string>& schemes,
               const ServerSpec& server, const std::vector<double>& rates,
               uint64_t seed)
{
    std::vector<ResilienceSweepRow> rows;
    rows.reserve(schemes.size() * rates.size());
    for (const std::string& scheme : schemes) {
        double clean_score = 0.0;
        bool have_clean = false;
        for (double rate : rates) {
            ResilienceSpec spec;
            spec.server = server;
            spec.scheme = scheme;
            spec.plan = scaledFaultPlan(rate);
            spec.seed = seed;

            ResilienceSweepRow row;
            row.scheme = scheme;
            row.fault_rate = rate;
            row.outcome = runResilient(spec);
            if (rate == 0.0 && !have_clean) {
                clean_score = row.outcome.truth_score;
                have_clean = true;
            }
            row.score_degradation =
                have_clean ? clean_score - row.outcome.truth_score : 0.0;
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

} // namespace harness
} // namespace clite

/**
 * @file
 * QPS-vs-tail-latency characterization of isolated LC jobs (Fig. 6).
 *
 * Sweeps offered load for one latency-critical application running
 * alone with the whole machine and reports the p95 curve, the QoS
 * target line and the knee (max load). Mirrors the methodology of
 * Sec. 5.1: "the QoS tail-latency of the LC workloads is the knee of
 * these curves and the corresponding QPS is the maximum load".
 */

#ifndef CLITE_HARNESS_KNEE_H
#define CLITE_HARNESS_KNEE_H

#include <string>
#include <vector>

#include "harness/schemes.h"

namespace clite {
namespace harness {

/** One point of the isolated load-latency curve. */
struct KneePoint
{
    double load_fraction = 0.0; ///< Of the catalog's max load.
    double qps = 0.0;           ///< Offered queries/second.
    double p95_ms = 0.0;        ///< Measured p95 latency.
};

/** Full characterization of one LC application. */
struct KneeCurve
{
    std::string workload;       ///< Application name.
    double qos_p95_ms = 0.0;    ///< Catalog QoS target.
    double max_qps = 0.0;       ///< Catalog max load (the knee).
    std::vector<KneePoint> points; ///< Sweep in load order.

    /**
     * The measured knee: the largest swept load whose p95 is within
     * the QoS target (0 when even the smallest load misses).
     */
    double measuredKneeLoad() const;
};

/**
 * Sweep @p workload in isolation.
 *
 * @param workload LC application name.
 * @param loads Load fractions to sweep (may exceed 1 to show the
 *     super-saturation blow-up).
 * @param backend Model backend to measure with.
 * @param seed DES/noise seed (noise is disabled for this analysis).
 */
KneeCurve sweepIsolatedLoad(const std::string& workload,
                            const std::vector<double>& loads,
                            ModelBackend backend = ModelBackend::Analytic,
                            uint64_t seed = 3);

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_KNEE_H

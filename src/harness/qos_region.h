/**
 * @file
 * QoS-safe region mapping (Fig. 1) and the coordinate-descent
 * counter-examples (Fig. 2).
 *
 * Fig. 1 plots, for one LC job at a fixed load, which (resource A,
 * resource B) allocations meet QoS when the remaining resources are
 * held at a fixed share — exposing the "resource equivalence class"
 * property (16 cores + 1 way vs 14 cores + 6 ways both safe).
 */

#ifndef CLITE_HARNESS_QOS_REGION_H
#define CLITE_HARNESS_QOS_REGION_H

#include <string>
#include <vector>

#include "harness/schemes.h"
#include "platform/resource.h"

namespace clite {
namespace harness {

/** A 2-D QoS-safe region for one job. */
struct QosRegion
{
    std::string workload;      ///< LC application.
    double load_fraction = 0;  ///< Offered load.
    platform::Resource res_a;  ///< X-axis resource.
    platform::Resource res_b;  ///< Y-axis resource.
    std::vector<int> a_units;  ///< X-axis allocation values.
    std::vector<int> b_units;  ///< Y-axis allocation values.
    /** safe[bi][ai]: does (a_units[ai], b_units[bi]) meet QoS? */
    std::vector<std::vector<bool>> safe;

    /** Number of QoS-safe cells. */
    size_t safeCount() const;

    /**
     * True if the region exhibits resource equivalence: at least two
     * safe cells where one has more of A and less of B than the other.
     */
    bool hasEquivalenceTradeoff() const;
};

/**
 * Map the QoS-safe region of @p workload at @p load over two
 * resources, holding every other resource at its full amount (the
 * job is measured alone, as in Fig. 1).
 *
 * @param res_a X-axis resource (must exist on the 3-resource server).
 * @param res_b Y-axis resource.
 */
QosRegion mapQosRegion(const std::string& workload, double load,
                       platform::Resource res_a, platform::Resource res_b);

} // namespace harness
} // namespace clite

#endif // CLITE_HARNESS_QOS_REGION_H

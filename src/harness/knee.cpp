#include "harness/knee.h"

#include "common/error.h"
#include "workloads/catalog.h"

namespace clite {
namespace harness {

double
KneeCurve::measuredKneeLoad() const
{
    double knee = 0.0;
    for (const auto& pt : points)
        if (pt.p95_ms <= qos_p95_ms && pt.load_fraction > knee)
            knee = pt.load_fraction;
    return knee;
}

KneeCurve
sweepIsolatedLoad(const std::string& workload,
                  const std::vector<double>& loads, ModelBackend backend,
                  uint64_t seed)
{
    CLITE_CHECK(!loads.empty(), "need at least one load point");
    workloads::WorkloadProfile profile = workloads::lcWorkload(workload);

    KneeCurve curve;
    curve.workload = workload;
    curve.qos_p95_ms = profile.qos_p95_ms;
    curve.max_qps = profile.max_qps;

    for (double load : loads) {
        CLITE_CHECK(load > 0.0, "load fraction must be > 0, got " << load);
        ServerSpec spec;
        spec.jobs = {workloads::JobSpec{profile, load}};
        spec.backend = backend;
        spec.noise_sigma = 0.0;
        spec.seed = seed;
        platform::SimulatedServer server = makeServer(spec);

        platform::Allocation full =
            platform::Allocation::maxFor(0, 1, server.config());
        std::vector<platform::JobObservation> obs =
            server.observeNoiseless(full);

        KneePoint pt;
        pt.load_fraction = load;
        pt.qps = load * profile.max_qps;
        pt.p95_ms = obs[0].p95_ms;
        curve.points.push_back(pt);
    }
    return curve;
}

} // namespace harness
} // namespace clite

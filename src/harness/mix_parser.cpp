#include "harness/mix_parser.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "workloads/catalog.h"

namespace clite {
namespace harness {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string& s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Parse "40%" or "0.4" into a load fraction. */
double
parseLoad(const std::string& text)
{
    std::string t = trim(text);
    CLITE_CHECK(!t.empty(), "empty load in mix term");
    bool percent = t.back() == '%';
    if (percent)
        t.pop_back();
    size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(t, &consumed);
    } catch (const std::exception&) {
        CLITE_THROW("malformed load value: '" << text << "'");
    }
    CLITE_CHECK(consumed == t.size(), "malformed load value: '" << text
                                          << "'");
    if (percent)
        v /= 100.0;
    CLITE_CHECK(v > 0.0 && v <= 1.0,
                "load must be in (0, 100%], got '" << text << "'");
    return v;
}

} // namespace

std::vector<workloads::JobSpec>
parseMix(const std::string& text)
{
    std::vector<workloads::JobSpec> jobs;
    std::stringstream ss(text);
    std::string term;
    while (std::getline(ss, term, ',')) {
        term = trim(term);
        CLITE_CHECK(!term.empty(), "empty job term in mix: '" << text
                                       << "'");
        size_t at = term.find('@');
        if (at == std::string::npos) {
            // Background job.
            workloads::WorkloadProfile p =
                workloads::workloadByName(term);
            CLITE_CHECK(!p.isLatencyCritical(),
                        "latency-critical workload '"
                            << term << "' needs a load, e.g. '" << term
                            << "@50%'");
            jobs.push_back(workloads::bgJob(term));
        } else {
            std::string name = trim(term.substr(0, at));
            workloads::WorkloadProfile p =
                workloads::workloadByName(name);
            CLITE_CHECK(p.isLatencyCritical(),
                        "background workload '"
                            << name << "' does not take a load");
            jobs.push_back(
                workloads::lcJob(name, parseLoad(term.substr(at + 1))));
        }
    }
    CLITE_CHECK(!jobs.empty(), "mix specification is empty");
    return jobs;
}

std::string
formatMix(const std::vector<workloads::JobSpec>& jobs)
{
    std::ostringstream oss;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            oss << ",";
        oss << jobs[i].profile.name;
        if (jobs[i].isLatencyCritical())
            oss << "@" << std::lround(jobs[i].load_fraction * 100.0)
                << "%";
    }
    return oss.str();
}

} // namespace harness
} // namespace clite

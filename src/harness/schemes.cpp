#include "harness/schemes.h"

#include "baselines/genetic.h"
#include "baselines/heracles.h"
#include "baselines/oracle.h"
#include "baselines/parties.h"
#include "baselines/random_plus.h"
#include "baselines/static_policies.h"
#include "common/error.h"
#include "core/clite.h"
#include "workloads/perf_model.h"

namespace clite {
namespace harness {

platform::SimulatedServer
makeServer(const ServerSpec& spec)
{
    platform::ServerConfig config =
        spec.all_resources
            ? platform::ServerConfig::xeonSilver4114AllResources()
            : platform::ServerConfig::xeonSilver4114();
    std::unique_ptr<workloads::PerformanceModel> model;
    if (spec.backend == ModelBackend::Analytic)
        model = std::make_unique<workloads::AnalyticModel>();
    else
        model = std::make_unique<workloads::QueueingSimModel>();
    return platform::SimulatedServer(std::move(config), spec.jobs,
                                     std::move(model), spec.seed,
                                     spec.noise_sigma);
}

std::unique_ptr<core::Controller>
makeScheme(const std::string& name, uint64_t seed)
{
    if (name == "clite") {
        core::CliteOptions o;
        o.seed = seed;
        return std::make_unique<core::CliteController>(o);
    }
    if (name == "parties") {
        baselines::PartiesOptions o;
        o.seed = seed;
        return std::make_unique<baselines::PartiesController>(o);
    }
    if (name == "heracles") {
        return std::make_unique<baselines::HeraclesController>();
    }
    if (name == "rand+") {
        baselines::RandomPlusOptions o;
        o.seed = seed;
        return std::make_unique<baselines::RandomPlusController>(o);
    }
    if (name == "genetic") {
        baselines::GeneticOptions o;
        o.seed = seed;
        return std::make_unique<baselines::GeneticController>(o);
    }
    if (name == "oracle") {
        return std::make_unique<baselines::OracleController>();
    }
    if (name == "equal-share") {
        return std::make_unique<baselines::EqualShareController>();
    }
    CLITE_THROW("unknown scheme: " << name);
}

const std::vector<std::string>&
allSchemeNames()
{
    static const std::vector<std::string> names = {
        "oracle", "clite",   "parties",     "heracles",
        "rand+",  "genetic", "equal-share",
    };
    return names;
}

SchemeOutcome
runScheme(const std::string& scheme, const ServerSpec& spec, uint64_t seed)
{
    platform::SimulatedServer server = makeServer(spec);
    std::unique_ptr<core::Controller> ctl = makeScheme(scheme, seed);

    SchemeOutcome out;
    out.result = ctl->run(server);
    CLITE_CHECK(out.result.best.has_value(),
                "scheme " << scheme << " produced no configuration");
    out.truth_obs = server.observeNoiseless(*out.result.best);
    out.truth = core::scoreObservations(out.truth_obs);
    out.samples_applied = server.applyCount();
    return out;
}

} // namespace harness
} // namespace clite

/**
 * @file
 * The engine's worker pool: execution slots with a lifecycle.
 *
 * Workers here are *scheduling entities*, not OS threads: each models
 * one execution slot of the manager-worker fleet (a remote worker
 * process in the Work Queue analogy). The engine assigns window tasks
 * to idle workers, charges each assignment a virtual duration, and —
 * via the fault plan — kills workers mid-task: a dead worker's task
 * never completes, its lease expires, and the manager resubmits it.
 * Probabilistically lost workers rejoin after a configured down time
 * (elastic pool); scripted deaths are permanent.
 *
 * The actual CPU work of a window (the node's observe→fit→acquire
 * step) is executed on the process-global deterministic thread pool
 * at dispatch time; WorkerPool only decides who is busy, who is dead,
 * and when. Everything is a pure function of the assignment sequence,
 * which is what makes chaos runs seed-reproducible.
 */

#ifndef CLITE_CLUSTER_WORKER_H
#define CLITE_CLUSTER_WORKER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clite {
namespace cluster {

/** A worker slot's lifecycle state. */
enum class WorkerState {
    Idle, ///< Ready for an assignment.
    Busy, ///< Holding a task (lease running).
    Dead, ///< Lost; tasks it held are resubmitted on lease expiry.
};

/** Printable state name ("idle", "busy", "dead"). */
const char* workerStateName(WorkerState state);

/** One execution slot. */
struct Worker
{
    WorkerState state = WorkerState::Idle;
    uint64_t current_task = 0; ///< Task held (valid while Busy).
    uint64_t assignments = 0;  ///< Tasks ever assigned to this slot.
    uint64_t losses = 0;       ///< Times this slot died.
};

/**
 * Fixed-capacity pool of worker slots.
 */
class WorkerPool
{
  public:
    /** @param workers Slot count (>= 1; values < 1 are clamped). */
    explicit WorkerPool(int workers);

    /** Total slots. */
    int size() const { return int(workers_.size()); }

    /** Slots not Dead. */
    int aliveCount() const;

    /** Slots currently Idle. */
    int idleCount() const;

    /** Lowest-index idle slot, or -1 when none. */
    int findIdle() const;

    /** Assign @p task to idle slot @p w (Idle -> Busy). */
    void assign(int w, uint64_t task);

    /** Release slot @p w after its task resolved (Busy -> Idle). */
    void release(int w);

    /** Kill slot @p w (-> Dead); its held task is forfeited. */
    void kill(int w);

    /** Revive a dead slot (Dead -> Idle). */
    void revive(int w);

    /** Slot @p w's record. */
    const Worker& worker(int w) const;

  private:
    std::vector<Worker> workers_;
};

} // namespace cluster
} // namespace clite

#endif // CLITE_CLUSTER_WORKER_H

#include "cluster/task_queue.h"

namespace clite {
namespace cluster {

const char*
taskStateName(TaskState state)
{
    switch (state) {
      case TaskState::Queued:
        return "queued";
      case TaskState::Running:
        return "running";
      case TaskState::Committed:
        return "committed";
      case TaskState::Superseded:
        return "superseded";
      case TaskState::Lost:
        return "lost";
      case TaskState::Failed:
        return "failed";
      case TaskState::Dropped:
        return "dropped";
    }
    return "unknown";
}

void
TaskQueue::push(const WindowTask& task)
{
    (task.critical ? critical_ : normal_).push_back(task.id);
}

void
TaskQueue::pushFront(const WindowTask& task)
{
    (task.critical ? critical_ : normal_).push_front(task.id);
}

std::optional<uint64_t>
TaskQueue::pop(bool critical_only,
               const std::function<bool(uint64_t)>& alive)
{
    while (!critical_.empty()) {
        uint64_t id = critical_.front();
        critical_.pop_front();
        if (alive(id))
            return id;
    }
    while (!critical_only && !normal_.empty()) {
        uint64_t id = normal_.front();
        normal_.pop_front();
        if (alive(id))
            return id;
    }
    return std::nullopt;
}

std::vector<uint64_t>
TaskQueue::dropNormal()
{
    std::vector<uint64_t> out(normal_.begin(), normal_.end());
    normal_.clear();
    return out;
}

} // namespace cluster
} // namespace clite

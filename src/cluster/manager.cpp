#include "cluster/manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace clite {
namespace cluster {

AsyncFleetEngine::AsyncFleetEngine(Fleet& fleet, AsyncOptions options)
    : fleet_(fleet),
      options_(std::move(options)),
      faults_(options_.faults, options_.fault_seed),
      workers_(options_.workers),
      nodes_(fleet.nodeCount()),
      quarantine_(fleet.nodeCount(), 0)
{
    CLITE_CHECK(options_.workers >= 1, "need at least one worker");
    CLITE_CHECK(options_.task_cost > 0.0, "task_cost must be positive");
    CLITE_CHECK(options_.task_jitter >= 0.0 && options_.task_jitter < 1.0,
                "task_jitter must be in [0, 1)");
    CLITE_CHECK(options_.straggler_prob >= 0.0 &&
                    options_.straggler_prob <= 1.0,
                "straggler_prob must be a probability");
    CLITE_CHECK(options_.straggler_factor >= 1.0,
                "straggler_factor must be >= 1");
    CLITE_CHECK(options_.lease > 0.0, "lease must be positive");
    CLITE_CHECK(options_.max_retries >= 0, "max_retries must be >= 0");
    CLITE_CHECK(options_.hedge_delay > 0.0, "hedge_delay must be positive");
    CLITE_CHECK(options_.quarantine_failures >= 1,
                "quarantine_failures must be >= 1");
    CLITE_CHECK(options_.degrade_below >= 0.0 &&
                    options_.degrade_below <= 1.0,
                "degrade_below must be a fraction");
}

double
AsyncFleetEngine::hash01(uint64_t stream, uint64_t counter) const
{
    // Same counter-keyed construction as FaultInjector::hash01: a pure
    // function of (seed, stream, counter), so durations are stable
    // whatever order the engine asks in.
    SplitMix64 sm(options_.fault_seed ^
                  (0x9E3779B97F4A7C15ull * (stream + 1)) ^
                  (0xC2B2AE3D27D4EB4Full * (counter + 1)));
    sm.next();
    return double(sm.next() >> 11) * (1.0 / 9007199254740992.0);
}

double
AsyncFleetEngine::sampleDuration(uint64_t assignment) const
{
    const double j = options_.task_jitter;
    double d = options_.task_cost *
               (1.0 - j + 2.0 * j * hash01(1, assignment));
    if (options_.straggler_prob > 0.0 &&
        hash01(2, assignment) < options_.straggler_prob)
        d *= options_.straggler_factor;
    return d;
}

void
AsyncFleetEngine::schedule(double time, Event event)
{
    event.time = time;
    event.seq = ++next_seq_;
    events_.push(event);
}

bool
AsyncFleetEngine::degraded() const
{
    return double(workers_.aliveCount()) <
           options_.degrade_below * double(workers_.size());
}

bool
AsyncFleetEngine::quarantined(size_t n) const
{
    CLITE_CHECK(n < nodes_.size(), "node index " << n << " out of range");
    return nodes_[n].quarantined;
}

size_t
AsyncFleetEngine::quarantinedCount() const
{
    size_t count = 0;
    for (const NodeCtl& ctl : nodes_)
        if (ctl.quarantined)
            ++count;
    return count;
}

uint64_t
AsyncFleetEngine::windowsCommitted(size_t n) const
{
    CLITE_CHECK(n < nodes_.size(), "node index " << n << " out of range");
    return nodes_[n].committed;
}

double
AsyncFleetEngine::qosMetFraction() const
{
    int lc_total = 0, lc_met = 0;
    for (const Fleet::Node& node : fleet_.nodes_)
        for (const platform::JobObservation& ob : node.truth)
            if (ob.is_lc) {
                ++lc_total;
                if (ob.qosMet())
                    ++lc_met;
            }
    return lc_total > 0 ? double(lc_met) / lc_total : 1.0;
}

double
AsyncFleetEngine::meanBgPerf() const
{
    int bg_total = 0;
    double sum = 0.0;
    for (const Fleet::Node& node : fleet_.nodes_)
        for (const platform::JobObservation& ob : node.truth)
            if (!ob.is_lc) {
                ++bg_total;
                sum += ob.perfNorm();
            }
    return bg_total > 0 ? sum / bg_total : 0.0;
}

void
AsyncFleetEngine::enqueueTask(size_t n)
{
    NodeCtl& ctl = nodes_[n];
    CLITE_CHECK(!ctl.in_flight,
                "node " << n << " already has a window in flight");
    WindowTask t;
    t.id = ++next_task_id_;
    t.node = n;
    t.epoch = ctl.epoch;
    t.attempt = 0;
    t.critical = fleet_.snapshot(n).lc_jobs > 0;
    ctl.in_flight = true;
    ctl.executed = false;
    ctl.attempts_started = 1;
    ctl.live.assign(1, t.id);
    TaskRec rec;
    rec.task = t;
    tasks_.emplace(t.id, rec);
    queue_.push(t);
}

void
AsyncFleetEngine::activateNodes()
{
    for (size_t n = 0; n < nodes_.size(); ++n) {
        NodeCtl& ctl = nodes_[n];
        if (!ctl.in_flight && !ctl.replenish_scheduled &&
            !ctl.quarantined && ctl.remaining > 0 &&
            fleet_.nodes_[n].server != nullptr)
            enqueueTask(n);
    }
}

void
AsyncFleetEngine::dispatch()
{
    const bool deg = degraded();
    if (deg && !queue_.empty()) {
        ++metrics_.degraded_dispatches;
        // Graceful degradation: shed the non-critical backlog instead
        // of letting it starve the QoS-critical class on what little
        // capacity is left. Shed windows are consumed (counted, paced
        // at the window cadence), never silently lost.
        for (uint64_t id : queue_.dropNormal()) {
            TaskRec& rec = tasks_.at(id);
            if (rec.state != TaskState::Queued)
                continue; // lazily cancelled earlier
            rec.state = TaskState::Dropped;
            dropLive(rec.task.node, id);
            NodeCtl& ctl = nodes_[rec.task.node];
            if (ctl.in_flight && ctl.epoch == rec.task.epoch &&
                ctl.live.empty()) {
                ++metrics_.windows_dropped;
                consumeWindow(rec.task.node, /*failed=*/false);
            }
        }
    }

    std::vector<size_t> exec_nodes;
    const auto alive = [this](uint64_t id) {
        return tasks_.at(id).state == TaskState::Queued;
    };
    while (workers_.findIdle() >= 0) {
        std::optional<uint64_t> id = queue_.pop(deg, alive);
        if (!id.has_value())
            break;
        const int w = workers_.findIdle();
        TaskRec& rec = tasks_.at(*id);
        rec.assignment = assignments_++;
        rec.worker = w;
        rec.state = TaskState::Running;
        rec.dispatched_at = now_;
        workers_.assign(w, *id);
        ++metrics_.tasks_dispatched;

        // Decide this attempt's fate up front (pure counter-keyed
        // hashes, so the decision is reproducible and independent of
        // dispatch order). A doomed or failing attempt must not
        // execute the node step: OnlineManager::tick() is not
        // idempotent, and a lost/failed attempt's work is lost work.
        rec.doomed = faults_.workerLost(rec.assignment, size_t(w));
        const int fault_attempt =
            rec.task.hedge ? rec.task.attempt + 100000 : rec.task.attempt;
        rec.failing = !rec.doomed &&
                      faults_.taskFails(rec.task.node, rec.task.epoch,
                                        fault_attempt);

        NodeCtl& ctl = nodes_[rec.task.node];
        if (!rec.doomed && !rec.failing && !ctl.executed) {
            // First healthy attempt of this window: it carries the
            // real observe->fit->acquire step. Later healthy siblings
            // (hedges, backups) deliver this result without re-running
            // it.
            ctl.executed = true;
            exec_nodes.push_back(rec.task.node);
        }

        const double duration = sampleDuration(rec.assignment);
        if (!rec.doomed) {
            Event e;
            e.kind = Event::Complete;
            e.task = *id;
            schedule(now_ + duration, e);
        }
        Event lease;
        lease.kind = Event::Lease;
        lease.task = *id;
        schedule(now_ + options_.lease * options_.task_cost, lease);
        if (options_.hedging && !rec.task.hedge) {
            Event h;
            h.kind = Event::Hedge;
            h.task = *id;
            schedule(now_ + options_.hedge_delay * options_.task_cost, h);
        }
    }

    // Fan the new node steps out on the deterministic pool: distinct
    // nodes, index-owned state, bit-identical at any thread count.
    if (!exec_nodes.empty())
        globalPool().parallelForIndices(
            exec_nodes, [this](size_t n) { fleet_.stepNode(n); });
}

void
AsyncFleetEngine::dropLive(size_t n, uint64_t id)
{
    std::vector<uint64_t>& live = nodes_[n].live;
    live.erase(std::remove(live.begin(), live.end(), id), live.end());
}

void
AsyncFleetEngine::maybeRejoin(const TaskRec& rec)
{
    if (options_.worker_down_time <= 0.0)
        return; // losses are permanent by configuration
    if (faults_.workerDeathScripted(rec.assignment, size_t(rec.worker)))
        return; // scripted deaths never rejoin
    Event e;
    e.kind = Event::Rejoin;
    e.worker = rec.worker;
    schedule(now_ + options_.worker_down_time * options_.task_cost, e);
}

void
AsyncFleetEngine::retryOrFail(TaskRec& rec)
{
    const size_t n = rec.task.node;
    NodeCtl& ctl = nodes_[n];
    if (!ctl.in_flight || ctl.epoch != rec.task.epoch)
        return; // the window already resolved
    if (ctl.attempts_started <= options_.max_retries) {
        WindowTask t;
        t.id = ++next_task_id_;
        t.node = n;
        t.epoch = ctl.epoch;
        t.attempt = ctl.attempts_started++;
        t.critical = rec.task.critical;
        TaskRec retry;
        retry.task = t;
        tasks_.emplace(t.id, retry);
        ctl.live.push_back(t.id);
        queue_.pushFront(t); // a retry is late already
        ++metrics_.tasks_retried;
    } else if (ctl.live.empty()) {
        // Out of budget and no attempt can still win: the window is
        // lost. The node's jobs are untouched (zero job loss); only
        // this observation window failed to advance.
        consumeWindow(n, /*failed=*/true);
    }
}

void
AsyncFleetEngine::consumeWindow(size_t n, bool failed)
{
    NodeCtl& ctl = nodes_[n];
    ctl.in_flight = false;
    ctl.executed = false;
    ctl.attempts_started = 0;
    ctl.live.clear();
    ++ctl.epoch;
    if (ctl.remaining > 0)
        --ctl.remaining;
    if (failed) {
        ++metrics_.windows_failed;
        ++ctl.failure_streak;
        if (ctl.failure_streak >= options_.quarantine_failures) {
            quarantineNode(n);
            return;
        }
    }
    if (ctl.remaining > 0 && !ctl.quarantined &&
        fleet_.nodes_[n].server != nullptr) {
        // Resume at the window cadence, not instantly: a shed or
        // failed window must not let the node burn through its budget
        // in zero virtual time while the pool is degraded.
        ctl.replenish_scheduled = true;
        Event e;
        e.kind = Event::Replenish;
        e.node = n;
        schedule(now_ + options_.task_cost, e);
    }
}

void
AsyncFleetEngine::quarantineNode(size_t n)
{
    NodeCtl& ctl = nodes_[n];
    ctl.quarantined = true;
    quarantine_[n] = 1;
    ++metrics_.nodes_quarantined;
    // Evict every hosted job back into the placement queue. No move is
    // charged: the node failed, not the job, so quarantine must never
    // push a job toward its parking budget.
    Fleet::Node& node = fleet_.nodes_[n];
    while (!node.job_ids.empty()) {
        const size_t idx = node.job_ids.size() - 1;
        const uint64_t id = node.job_ids[idx];
        FleetJob& job = fleet_.jobs_[size_t(id) - 1];
        fleet_.unhostJob(n, idx);
        job.state = JobState::Pending;
        job.node = -1;
        fleet_.queue_.push_back(id);
    }
    fleet_.placeQueued(&quarantine_);
    activateNodes();
}

void
AsyncFleetEngine::commit(TaskRec& rec)
{
    const size_t n = rec.task.node;
    NodeCtl& ctl = nodes_[n];
    workers_.release(rec.worker);
    rec.state = TaskState::Committed;
    ++metrics_.tasks_committed;
    if (rec.task.hedge)
        ++metrics_.hedges_won;

    // First result wins: cancel every sibling attempt of this window.
    for (uint64_t sid : ctl.live) {
        if (sid == rec.task.id)
            continue;
        TaskRec& sib = tasks_.at(sid);
        if (sib.state == TaskState::Queued) {
            sib.state = TaskState::Superseded; // skipped lazily at pop
        } else if (sib.state == TaskState::Running) {
            sib.state = TaskState::Superseded;
            if (sib.doomed) {
                // The loser's worker was going to die holding this
                // task; cancellation doesn't save it. Account the
                // physical loss now, before the stale lease fires.
                workers_.kill(sib.worker);
                ++metrics_.workers_lost;
                faults_.record(platform::FaultKind::WorkerLoss,
                               sib.task.id, size_t(sib.worker));
                maybeRejoin(sib);
            } else {
                workers_.release(sib.worker);
            }
            if (sib.task.hedge)
                ++metrics_.hedges_cancelled;
            else
                ++metrics_.stale_results;
        }
    }
    ctl.live.clear();
    ctl.in_flight = false;
    ctl.executed = false;
    ctl.attempts_started = 0;
    ctl.failure_streak = 0;
    ++ctl.epoch;
    ++ctl.committed;
    if (ctl.remaining > 0)
        --ctl.remaining;

    // The per-node slice of lockstep phase C: sample fleet QoS, teach
    // the placement surrogate, publish the node's checkpoint, act on
    // its infeasibility signal, then place whatever is queued.
    qos_history_.add(qosMetFraction());
    fleet_.scheduler_.recordNode(fleet_.snapshot(n));
    Fleet::Node& node = fleet_.nodes_[n];
    if (fleet_.options_.shared_store && node.initialized &&
        node.server != nullptr)
        fleet_.store_.put(node.manager->makeCheckpoint());
    FleetWindow scratch;
    fleet_.rescheduleNode(n, scratch, &quarantine_);
    fleet_.placeQueued(&quarantine_);
    // activateNodes() re-enqueues this node's next window too (it now
    // passes the same guard as any idle node) — it must be the ONLY
    // re-enqueue path, or the epoch gets two competing window tasks.
    activateNodes();
}

void
AsyncFleetEngine::onComplete(uint64_t id)
{
    TaskRec& rec = tasks_.at(id);
    if (rec.state != TaskState::Running)
        return; // superseded while in flight; worker already handled
    NodeCtl& ctl = nodes_[rec.task.node];
    if (!ctl.in_flight || ctl.epoch != rec.task.epoch) {
        // Stale attempt of an already-resolved window that escaped the
        // sibling cancellation (defense in depth): release its worker,
        // never commit it.
        rec.state = TaskState::Superseded;
        workers_.release(rec.worker);
        if (rec.task.hedge)
            ++metrics_.hedges_cancelled;
        else
            ++metrics_.stale_results;
        return;
    }
    if (rec.failing) {
        rec.state = TaskState::Failed;
        workers_.release(rec.worker);
        ++metrics_.task_failures;
        faults_.record(platform::FaultKind::TaskFailure, rec.task.epoch,
                       rec.task.node);
        dropLive(rec.task.node, id);
        retryOrFail(rec);
        return;
    }
    commit(rec);
}

void
AsyncFleetEngine::onLease(uint64_t id)
{
    TaskRec& rec = tasks_.at(id);
    if (rec.state != TaskState::Running)
        return; // resolved before the lease ran out
    ++metrics_.lease_expiries;
    if (rec.doomed) {
        // The worker died holding the task; the lease is how the
        // manager finds out. Reclaim and resubmit.
        rec.state = TaskState::Lost;
        workers_.kill(rec.worker);
        ++metrics_.workers_lost;
        faults_.record(platform::FaultKind::WorkerLoss, rec.task.id,
                       size_t(rec.worker));
        maybeRejoin(rec);
        dropLive(rec.task.node, id);
        retryOrFail(rec);
    } else {
        // Spurious expiry on a straggler: the attempt keeps running
        // (it may still win) while a backup enters the queue.
        retryOrFail(rec);
    }
}

void
AsyncFleetEngine::onHedge(uint64_t id)
{
    TaskRec& rec = tasks_.at(id);
    if (!options_.hedging || rec.state != TaskState::Running || rec.hedged)
        return;
    NodeCtl& ctl = nodes_[rec.task.node];
    if (!ctl.in_flight || ctl.epoch != rec.task.epoch)
        return;
    if (workers_.findIdle() < 0)
        return; // no spare capacity to speculate with
    rec.hedged = true;
    WindowTask t;
    t.id = ++next_task_id_;
    t.node = rec.task.node;
    t.epoch = rec.task.epoch;
    t.attempt = rec.task.attempt;
    t.hedge = true;
    t.critical = rec.task.critical;
    TaskRec hedge;
    hedge.task = t;
    tasks_.emplace(t.id, hedge);
    ctl.live.push_back(t.id);
    queue_.pushFront(t);
    ++metrics_.hedges_launched;
}

void
AsyncFleetEngine::onRejoin(int worker)
{
    if (workers_.worker(worker).state != WorkerState::Dead)
        return; // already back (stale event from an earlier loss)
    workers_.revive(worker);
    ++metrics_.workers_rejoined;
}

void
AsyncFleetEngine::onReplenish(size_t node)
{
    NodeCtl& ctl = nodes_[node];
    ctl.replenish_scheduled = false;
    if (!ctl.in_flight && !ctl.quarantined && ctl.remaining > 0 &&
        fleet_.nodes_[node].server != nullptr)
        enqueueTask(node);
}

const FleetMetrics&
AsyncFleetEngine::run(int epochs)
{
    CLITE_CHECK(epochs >= 1, "run() needs at least one epoch");
    for (NodeCtl& ctl : nodes_)
        ctl.remaining = epochs;
    fleet_.placeQueued(&quarantine_);
    activateNodes();
    dispatch();

    while (!events_.empty()) {
        const Event e = events_.top();
        events_.pop();
        now_ = std::max(now_, e.time);
        switch (e.kind) {
          case Event::Complete:
            onComplete(e.task);
            break;
          case Event::Lease:
            onLease(e.task);
            break;
          case Event::Hedge:
            onHedge(e.task);
            break;
          case Event::Rejoin:
            onRejoin(e.worker);
            break;
          case Event::Replenish:
            onReplenish(e.node);
            break;
        }
        dispatch();
    }

    // A drained event heap with tasks still queued means every worker
    // is permanently dead: nothing can ever dispatch again. Shed the
    // backlog visibly rather than pretending the run finished.
    const auto alive = [this](uint64_t id) {
        return tasks_.at(id).state == TaskState::Queued;
    };
    bool stalled = false;
    while (std::optional<uint64_t> id = queue_.pop(false, alive)) {
        TaskRec& rec = tasks_.at(*id);
        rec.state = TaskState::Dropped;
        ++metrics_.windows_dropped;
        stalled = true;
    }
    if (stalled) {
        metrics_.stalled = true;
        for (NodeCtl& ctl : nodes_) {
            ctl.live.clear();
            ctl.in_flight = false;
            ctl.executed = false;
            ctl.attempts_started = 0;
            ctl.remaining = 0;
        }
    }

    // Refit observability: node managers count cumulatively since
    // their creation, so assign (not add) — idempotent across run()
    // calls and immune to double-counting.
    metrics_.refits = 0;
    metrics_.probe_evals = 0;
    metrics_.warm_probe_hits = 0;
    metrics_.coarse_windows = 0;
    metrics_.qos_windows = 0;
    metrics_.violating_windows = 0;
    metrics_.transients_ridden = 0;
    metrics_.sustained_shifts = 0;
    for (const Fleet::Node& node : fleet_.nodes_) {
        if (node.manager == nullptr)
            continue;
        metrics_.refits += node.manager->refits();
        metrics_.probe_evals += node.manager->probeEvals();
        metrics_.warm_probe_hits += node.manager->warmProbeHits();
        metrics_.coarse_windows += node.manager->coarseWindows();
        metrics_.qos_windows += node.manager->qosWindows();
        metrics_.violating_windows += node.manager->violatingWindows();
        metrics_.transients_ridden += node.manager->transientsRidden();
        metrics_.sustained_shifts += node.manager->sustainedShifts();
    }
    return metrics_;
}

} // namespace cluster
} // namespace clite

/**
 * @file
 * Cluster-level job placement (the fleet half of the CLITE split).
 *
 * CLITE's per-node controller answers "how should THIS node's
 * resources be partitioned among its jobs"; the cluster scheduler
 * answers the question one level up: "which node should this job run
 * on". Following the SLO-aware colocation line of work (Janus &
 * Rzadca; the per-node-QoS-controller + fleet-scheduler split of
 * predictable cluster serving), placement uses only cheap fleet-level
 * signals — no per-node search is run to place a job:
 *
 *  - **Best-fit on predicted headroom.** Each node carries a small GP
 *    surrogate trained online on (occupancy features → observed Eq. 3
 *    score) pairs from its monitoring windows. A candidate placement
 *    is scored by predicting the node's score with the job added;
 *    the job goes to the node predicted to retain the most headroom.
 *    Fixed hyper-parameters keep the prediction deterministic and
 *    O(history²) cheap.
 *  - **Least-loaded fallback.** Until a node's surrogate has enough
 *    windows to predict (min_model_samples), or when no candidate
 *    node has a trained surrogate, placement falls back to the least
 *    LC-loaded feasible node (ties: fewest jobs, then lowest index).
 *  - **Round-robin** is kept as an ablation baseline.
 *
 * Feasibility is never compromised: a node whose unit budget cannot
 * give one more job a unit of every resource (the Allocation
 * invariant) is not a candidate, whatever the policy says.
 */

#ifndef CLITE_CLUSTER_SCHEDULER_H
#define CLITE_CLUSTER_SCHEDULER_H

#include <memory>
#include <string>
#include <vector>

#include "gp/gaussian_process.h"
#include "workloads/profile.h"

namespace clite {
namespace cluster {

/** Node-choice policies for admission and rescheduling. */
enum class PlacementPolicy {
    BestFitHeadroom, ///< Max GP-predicted post-placement score.
    LeastLoaded,     ///< Min LC load sum (ties: jobs, then index).
    RoundRobin,      ///< Rotate over feasible nodes (ablation).
};

/** Printable policy name ("best-fit-headroom", ...). */
const char* placementPolicyName(PlacementPolicy policy);

/** Placement knobs. */
struct PlacementOptions
{
    PlacementPolicy policy = PlacementPolicy::BestFitHeadroom;
    /** Monitoring windows a node's surrogate needs before it may
     *  predict; below this the least-loaded fallback is used. */
    int min_model_samples = 4;
    /** Per-node training-history cap (oldest windows are dropped). */
    int max_model_samples = 64;
};

/**
 * What the scheduler may know about one node when placing: cheap,
 * instantaneous occupancy signals plus the last monitoring window's
 * outcome. Snapshots are value types so placement decisions are
 * testable without a live fleet.
 */
struct NodeSnapshot
{
    size_t node = 0;        ///< Node index in the fleet.
    size_t job_count = 0;   ///< Co-located jobs right now.
    size_t lc_jobs = 0;     ///< Of which latency-critical.
    size_t bg_jobs = 0;     ///< Of which background.
    double lc_load_sum = 0; ///< Sum of LC jobs' load fractions.
    /** Max co-locatable jobs (min over resources of unit count). */
    size_t capacity = 0;
    double last_score = 0.0; ///< Last observed Eq. 3 score.
    bool all_qos_met = false;///< Last window's QoS state.

    /** True when one more job still fits the unit budget. */
    bool canHost() const { return job_count < capacity; }

    /** Snapshot of this node with @p spec hypothetically added. */
    NodeSnapshot withJob(const workloads::JobSpec& spec) const;
};

/**
 * Per-node online surrogate of "occupancy → achievable score".
 *
 * Each node owns an independent GP over a 3-feature description of
 * its occupancy (job count, LC load sum, BG fraction). observe()
 * feeds one monitoring window; predictScore() evaluates a
 * hypothetical occupancy. Hyper-parameters are fixed (no refit RNG),
 * so the model is a pure function of the observation sequence —
 * the determinism the lockstep fleet tick relies on.
 */
class HeadroomModel
{
  public:
    explicit HeadroomModel(PlacementOptions options = {});

    /** Record one monitoring window of @p snapshot's node. */
    void observe(const NodeSnapshot& snapshot);

    /** True when @p node has >= min_model_samples windows recorded. */
    bool ready(size_t node) const;

    /**
     * Predicted Eq. 3 score of @p hypothetical's node at that
     * occupancy (posterior mean).
     * @pre ready(hypothetical.node)
     */
    double predictScore(const NodeSnapshot& hypothetical) const;

    /** Windows recorded for @p node so far. */
    size_t sampleCount(size_t node) const;

  private:
    struct NodeModel
    {
        std::vector<linalg::Vector> x; ///< Feature history (ring).
        std::vector<double> y;         ///< Observed scores.
        std::unique_ptr<gp::GaussianProcess> gp;
        bool stale = true; ///< History changed since the last fit.
    };

    /** The 3-feature encoding of a snapshot. */
    static linalg::Vector features(const NodeSnapshot& snapshot);

    NodeModel& nodeModel(size_t node);

    PlacementOptions options_;
    mutable std::vector<NodeModel> models_;
};

/**
 * The fleet-level placement engine. Stateless per decision apart from
 * the headroom surrogates (fed by the fleet each window) and the
 * round-robin cursor.
 */
class ClusterScheduler
{
  public:
    explicit ClusterScheduler(PlacementOptions options = {});

    /** The options in effect. */
    const PlacementOptions& options() const { return options_; }

    /**
     * Choose a node for @p spec among @p nodes.
     *
     * @param spec The job to place.
     * @param nodes Snapshots of every node (any order; the snapshot's
     *     own node field is returned).
     * @param exclude Node to avoid if any alternative exists (the
     *     source node of a rescheduled job; -1 for none).
     * @return The chosen node index, or -1 when no node can host.
     */
    int place(const workloads::JobSpec& spec,
              const std::vector<NodeSnapshot>& nodes, int exclude = -1);

    /** Feed one fleet window's snapshots to the headroom surrogates. */
    void recordWindow(const std::vector<NodeSnapshot>& nodes);

    /**
     * Feed a single node's window to its headroom surrogate — the
     * async engine's per-commit sibling of recordWindow (nodes advance
     * independently, so whole-fleet snapshots never exist at once).
     * Empty nodes are ignored, as in recordWindow.
     */
    void recordNode(const NodeSnapshot& node);

    /** The headroom surrogate bank (for tests / introspection). */
    const HeadroomModel& model() const { return model_; }

  private:
    PlacementOptions options_;
    HeadroomModel model_;
    size_t rr_cursor_ = 0;
};

} // namespace cluster
} // namespace clite

#endif // CLITE_CLUSTER_SCHEDULER_H

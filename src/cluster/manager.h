/**
 * @file
 * The async manager-worker fleet engine.
 *
 * Fleet::tick() advances every node in a lockstep window behind a
 * global barrier: one slow or dead participant stalls the whole
 * cluster, and FLEET_scaling.json shows the cost growing
 * super-linearly with node count. AsyncFleetEngine replaces the
 * barrier with the manager-worker architecture of cctools Work Queue:
 *
 *  - The **manager** (this class) owns the job registry, the
 *    ClusterScheduler, and a TaskQueue of serialized per-node window
 *    tasks. It reacts to completions one at a time — nodes advance
 *    independently; node 3 can be on window 12 while node 7, stuck
 *    behind a straggling worker, is still on window 5.
 *  - **Workers** (WorkerPool slots) pull tasks and run each node's
 *    observe→fit→acquire step, streaming results back as completion
 *    events.
 *
 * Failure handling is first-class:
 *
 *  - **Lost-worker recovery.** Every dispatched task carries a lease.
 *    A worker that dies mid-task (injected via platform/faults'
 *    WorkerLoss) never completes it; when the lease expires the
 *    manager resubmits the task, up to max_retries attempts. The job
 *    registry is untouched by any worker death — zero job loss under
 *    churn is a property test, not a hope.
 *  - **Straggler hedging.** A task still running hedge_delay after
 *    dispatch is speculatively re-executed on an idle worker;
 *    whichever attempt finishes first commits the window and the
 *    loser is cancelled (first-result-wins).
 *  - **Node quarantine + graceful degradation.** A node whose windows
 *    fail repeatedly (task failures or exhausted retries) is
 *    quarantined — the fleet-granularity analogue of the telemetry
 *    quarantine inside OnlineManager — and its jobs are rescheduled
 *    through the existing eviction path. When workers get scarce
 *    (alive fraction below degrade_below) the manager degrades to
 *    serving the QoS-critical nodes first: queued windows of BG-only
 *    nodes are shed (counted, never silently) instead of stalling the
 *    critical ones.
 *
 * Determinism: the engine is a discrete-event simulation over virtual
 * time. Task durations, worker deaths and task failures are pure
 * counter-keyed hashes of the seed; events are ordered by (time,
 * sequence number); and the real CPU work of each window runs on the
 * deterministic global thread pool with per-node state isolation. A
 * run is therefore bit-reproducible given (options, seed, worker
 * count) at ANY CLITE_THREADS setting, and the lockstep mode —
 * byte-identical to before — remains available for the determinism
 * goldens.
 */

#ifndef CLITE_CLUSTER_MANAGER_H
#define CLITE_CLUSTER_MANAGER_H

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/task_queue.h"
#include "cluster/worker.h"
#include "platform/faults.h"
#include "stats/summary.h"

namespace clite {
namespace cluster {

/** Engine knobs. Durations are in units of the mean task cost. */
struct AsyncOptions
{
    /** Worker slots. */
    int workers = 4;
    /** Mean virtual duration of one window task. */
    double task_cost = 1.0;
    /** Uniform relative duration jitter (0.25 = ±25%). */
    double task_jitter = 0.25;
    /** P(a task is a straggler), per assignment. */
    double straggler_prob = 0.02;
    /** Duration multiplier of a straggler. */
    double straggler_factor = 8.0;
    /** Task lease, in task_cost units; expiry triggers resubmission. */
    double lease = 6.0;
    /** Resubmissions allowed per window after losses/failures. */
    int max_retries = 3;
    /** Speculatively re-execute tasks still running after this. */
    bool hedging = true;
    /** Hedge trigger, in task_cost units. */
    double hedge_delay = 3.0;
    /** Consecutive failed windows before a node is quarantined. */
    int quarantine_failures = 2;
    /** Degrade to critical-only when alive/total falls below this. */
    double degrade_below = 0.5;
    /** Down time of a probabilistically lost worker, in task_cost
     *  units (scripted deaths are permanent); <= 0 = never rejoins. */
    double worker_down_time = 10.0;
    /** Worker-loss / task-failure schedule (other kinds ignored). */
    platform::FaultPlan faults;
    /** Seed of the fault decisions and duration jitter. */
    uint64_t fault_seed = 0xF1EE7ull;
};

/**
 * Per-fleet robustness counters. The satellite telemetry an operator
 * watches: how often the retry, hedge, quarantine and degradation
 * paths actually fired.
 */
struct FleetMetrics
{
    uint64_t tasks_dispatched = 0; ///< Assignments handed to workers.
    uint64_t tasks_committed = 0;  ///< Windows advanced by a result.
    uint64_t tasks_retried = 0;    ///< Resubmissions after loss/failure.
    uint64_t task_failures = 0;    ///< Attempts that failed at the node.
    uint64_t lease_expiries = 0;   ///< Leases that ran out.
    uint64_t workers_lost = 0;     ///< Worker deaths observed.
    uint64_t workers_rejoined = 0; ///< Elastic rejoins after a loss.
    uint64_t hedges_launched = 0;  ///< Speculative duplicates started.
    uint64_t hedges_won = 0;       ///< Windows committed by a hedge.
    uint64_t hedges_cancelled = 0; ///< Hedges beaten by their original.
    uint64_t stale_results = 0;    ///< Completions after the window closed.
    uint64_t windows_failed = 0;   ///< Windows that exhausted retries.
    uint64_t windows_dropped = 0;  ///< Windows shed under degradation.
    uint64_t nodes_quarantined = 0;///< Nodes removed from service.
    uint64_t degraded_dispatches = 0; ///< Dispatch rounds run degraded.
    /**
     * Refit observability, summed over the live node managers at the
     * end of each run() (cumulative since node creation; counters of
     * torn-down nodes are not retained): GP hyper-refits, the probe
     * objective evaluations they consumed, warm-simplex probes that
     * won outright, and observation windows measured in coarse
     * (event-budgeted) DES mode. Printed by examples/cluster_sim.
     */
    uint64_t refits = 0;
    uint64_t probe_evals = 0;
    uint64_t warm_probe_hits = 0;
    uint64_t coarse_windows = 0;
    /**
     * Percentile-over-time QoS telemetry, summed over live node
     * managers like the refit counters above: fault-free monitoring
     * windows with a QoS verdict, the subset that violated p95, and
     * the re-optimization policy's transient/sustained split.
     */
    uint64_t qos_windows = 0;
    uint64_t violating_windows = 0;
    uint64_t transients_ridden = 0;
    uint64_t sustained_shifts = 0;
    bool stalled = false;          ///< Run ended with zero capacity.
};

/**
 * The async manager-worker engine over a Fleet.
 *
 * The engine drives the same node substrate as Fleet::tick() — the
 * two modes share placement, eviction, the warm-start store and the
 * job registry — but never calls tick(); lockstep behaviour (and its
 * goldens) are untouched. Use one or the other on a given Fleet, not
 * both interleaved.
 */
class AsyncFleetEngine
{
  public:
    /**
     * @param fleet The fleet to drive (not owned; must outlive).
     * @param options Engine knobs (validated).
     */
    explicit AsyncFleetEngine(Fleet& fleet, AsyncOptions options = {});

    /**
     * Drive every serviceable node through @p epochs more observation
     * windows. Queued jobs are placed at the start and at every
     * commit; nodes occupied mid-run join the cadence with whatever
     * window budget they have left. Returns when every window is
     * committed, failed, or shed.
     */
    const FleetMetrics& run(int epochs);

    /** The robustness counters so far. */
    const FleetMetrics& metrics() const { return metrics_; }

    /** The options in effect. */
    const AsyncOptions& options() const { return options_; }

    /** Virtual time elapsed. */
    double virtualTime() const { return now_; }

    /** Is node @p n quarantined? */
    bool quarantined(size_t n) const;

    /** Nodes currently quarantined. */
    size_t quarantinedCount() const;

    /** Worker slots not dead. */
    int aliveWorkers() const { return workers_.aliveCount(); }

    /** The worker pool (for tests / introspection). */
    const WorkerPool& workers() const { return workers_; }

    /** Windows committed for node @p n over the engine's lifetime. */
    uint64_t windowsCommitted(size_t n) const;

    /**
     * Ground-truth fraction of placed LC jobs meeting QoS, from each
     * node's last committed window (1 when none are placed).
     */
    double qosMetFraction() const;

    /** Ground-truth mean BG normalized perf, same source (0 if none). */
    double meanBgPerf() const;

    /** Per-commit QoS-met fraction history (for bench aggregation). */
    const stats::RunningStats& qosHistory() const { return qos_history_; }

    /** The fault injector (for tests: injected event log). */
    const platform::FaultInjector& faults() const { return faults_; }

  private:
    /** One attempt's authoritative record. */
    struct TaskRec
    {
        WindowTask task;
        TaskState state = TaskState::Queued;
        int worker = -1;
        bool doomed = false;  ///< Assigned worker dies during it.
        bool failing = false; ///< Completes but fails at the node.
        bool hedged = false;  ///< A hedge was launched for it.
        uint64_t assignment = 0; ///< Global assignment index (fault key).
        double dispatched_at = 0.0;
    };

    /** Engine-side per-node control state. */
    struct NodeCtl
    {
        uint64_t epoch = 0;        ///< Next window number to serialize.
        uint64_t committed = 0;    ///< Windows committed so far.
        int remaining = 0;         ///< Windows left this run.
        bool in_flight = false;    ///< Current window queued/running.
        bool executed = false;     ///< Current window's step has run.
        int attempts_started = 0;  ///< Attempts of the current window.
        int failure_streak = 0;    ///< Consecutive failed windows.
        bool quarantined = false;
        /** A Replenish event is pending (window-cadence pacing). */
        bool replenish_scheduled = false;
        std::vector<uint64_t> live; ///< Commit-eligible attempt ids.
    };

    /** A scheduled engine event. */
    struct Event
    {
        double time = 0.0;
        uint64_t seq = 0; ///< Tie-break: schedule order.
        enum Kind { Complete, Lease, Hedge, Rejoin, Replenish } kind;
        uint64_t task = 0; ///< Task id (Complete/Lease/Hedge).
        int worker = -1;   ///< Worker (Rejoin).
        size_t node = 0;   ///< Node (Replenish).

        bool operator>(const Event& o) const
        {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    /** Uniform [0,1) hash of (seed, stream, counter). */
    double hash01(uint64_t stream, uint64_t counter) const;

    /** Virtual duration of assignment @p assignment. */
    double sampleDuration(uint64_t assignment) const;

    void schedule(double time, Event event);

    /** Is the pool scarce enough for critical-only dispatch? */
    bool degraded() const;

    /** Serialize node @p n's next window into the queue. */
    void enqueueTask(size_t n);

    /** Re-enqueue pending windows of idle serviceable nodes. */
    void activateNodes();

    /** Fill idle workers from the queue; execute new steps. */
    void dispatch();

    /** A task's result arrived (or its scripted failure did). */
    void onComplete(uint64_t id);

    /** A task's lease ran out: reclaim (dead worker) or back up. */
    void onLease(uint64_t id);

    /** A task is straggling: speculatively duplicate it. */
    void onHedge(uint64_t id);

    /** A transiently lost worker comes back. */
    void onRejoin(int worker);

    /** Window-cadence pacing tick of a shed node. */
    void onReplenish(size_t node);

    /** Schedule @p rec's killed worker to rejoin, unless permanent. */
    void maybeRejoin(const TaskRec& rec);

    /** Launch a retry attempt, or fail the window when out of budget. */
    void retryOrFail(TaskRec& rec);

    /** A window ran out of attempts (or was shed): consume it. */
    void consumeWindow(size_t n, bool failed);

    /** Deliver @p rec's result: advance the node, learn, reschedule. */
    void commit(TaskRec& rec);

    /** Evict everything from node @p n and bar it from service. */
    void quarantineNode(size_t n);

    /** Remove @p id from its node's live-attempt list. */
    void dropLive(size_t n, uint64_t id);

    Fleet& fleet_;
    AsyncOptions options_;
    platform::FaultInjector faults_;
    WorkerPool workers_;
    TaskQueue queue_;

    std::map<uint64_t, TaskRec> tasks_;
    std::vector<NodeCtl> nodes_;
    std::vector<char> quarantine_; ///< Placement mask (1 = barred).
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;

    FleetMetrics metrics_;
    stats::RunningStats qos_history_;
    double now_ = 0.0;
    uint64_t next_task_id_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t assignments_ = 0;
};

} // namespace cluster
} // namespace clite

#endif // CLITE_CLUSTER_MANAGER_H

#include "cluster/fleet.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/arena.h"
#include "common/error.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "core/score.h"
#include "sim/queueing.h"
#include "workloads/perf_model.h"

namespace clite {
namespace cluster {

const char*
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Pending:
        return "pending";
      case JobState::Placed:
        return "placed";
      case JobState::Parked:
        return "parked";
    }
    return "unknown";
}

Fleet::Fleet(FleetOptions options)
    : options_(std::move(options)),
      config_(options_.all_resources
                  ? platform::ServerConfig::xeonSilver4114AllResources()
                  : platform::ServerConfig::xeonSilver4114()),
      scheduler_(options_.placement)
{
    CLITE_CHECK(options_.nodes >= 1, "a fleet needs at least one node");
    CLITE_CHECK(options_.max_moves >= 1, "max_moves must be >= 1");
    CLITE_CHECK(options_.node_budget_seconds >= 0.0,
                "node_budget_seconds must be >= 0");
    node_capacity_ = size_t(config_.resources()[0].units);
    for (const platform::ResourceSpec& r : config_.resources())
        node_capacity_ = std::min(node_capacity_, size_t(r.units));
    nodes_.resize(size_t(options_.nodes));
}

uint64_t
Fleet::nodeSeed(size_t n) const
{
    // Stable per (fleet seed, node index) whatever the order nodes get
    // populated in — placement decisions must not perturb node noise
    // streams.
    SplitMix64 sm(options_.seed ^
                  (0x9E3779B97F4A7C15ull * (uint64_t(n) + 1)));
    return sm.next();
}

uint64_t
Fleet::admit(const workloads::JobSpec& spec)
{
    FleetJob job;
    job.id = uint64_t(jobs_.size()) + 1;
    job.spec = spec;
    jobs_.push_back(std::move(job));
    queue_.push_back(jobs_.back().id);
    return jobs_.back().id;
}

void
Fleet::setJobLoad(uint64_t id, double load_fraction)
{
    CLITE_CHECK(id >= 1 && id <= jobs_.size(),
                "unknown fleet job id " << id);
    FleetJob& job = jobs_[size_t(id) - 1];
    CLITE_CHECK(job.state == JobState::Placed,
                "job " << id << " is " << jobStateName(job.state)
                       << ", not placed");
    Node& node = nodes_[size_t(job.node)];
    size_t idx = 0;
    while (node.job_ids[idx] != id)
        ++idx;
    node.server->setLoad(idx, load_fraction);
    // Keep the registry's spec in step: a later eviction re-places
    // the job at its current load, not its admission load.
    job.spec.load_fraction = load_fraction;
}

const FleetJob&
Fleet::job(uint64_t id) const
{
    CLITE_CHECK(id >= 1 && id <= jobs_.size(),
                "unknown fleet job id " << id);
    return jobs_[size_t(id) - 1];
}

const std::vector<uint64_t>&
Fleet::nodeJobIds(size_t n) const
{
    CLITE_CHECK(n < nodes_.size(), "node index " << n << " out of range");
    return nodes_[n].job_ids;
}

const platform::SimulatedServer*
Fleet::nodeServer(size_t n) const
{
    CLITE_CHECK(n < nodes_.size(), "node index " << n << " out of range");
    return nodes_[n].server.get();
}

const core::OnlineManager*
Fleet::nodeManager(size_t n) const
{
    CLITE_CHECK(n < nodes_.size(), "node index " << n << " out of range");
    return nodes_[n].manager.get();
}

NodeSnapshot
Fleet::snapshot(size_t n) const
{
    const Node& node = nodes_[n];
    NodeSnapshot s;
    s.node = n;
    s.capacity = node_capacity_;
    s.job_count = node.job_ids.size();
    if (node.server != nullptr) {
        for (size_t j = 0; j < node.server->jobCount(); ++j) {
            const workloads::JobSpec& spec = node.server->job(j);
            if (spec.isLatencyCritical()) {
                ++s.lc_jobs;
                s.lc_load_sum += spec.load_fraction;
            } else {
                ++s.bg_jobs;
            }
        }
    }
    s.last_score = node.truth_score;
    s.all_qos_met = node.truth_qos;
    return s;
}

bool
Fleet::tryPlace(uint64_t id, int exclude, const std::vector<char>* avoid)
{
    std::vector<NodeSnapshot> snaps;
    snaps.reserve(nodes_.size());
    for (size_t n = 0; n < nodes_.size(); ++n) {
        if (avoid != nullptr && n < avoid->size() && (*avoid)[n])
            continue; // quarantined nodes never bid
        snaps.push_back(snapshot(n));
    }
    int n = scheduler_.place(jobs_[size_t(id) - 1].spec, snaps, exclude);
    if (n < 0)
        return false;
    hostJob(id, size_t(n));
    return true;
}

int
Fleet::placeQueued(const std::vector<char>* avoid)
{
    int placed = 0;
    size_t pending = queue_.size();
    for (size_t i = 0; i < pending; ++i) {
        uint64_t id = queue_.front();
        queue_.pop_front();
        if (tryPlace(id, -1, avoid))
            ++placed;
        else
            queue_.push_back(id);
    }
    return placed;
}

void
Fleet::hostJob(uint64_t id, size_t n)
{
    Node& node = nodes_[n];
    FleetJob& job = jobs_[size_t(id) - 1];
    if (node.server == nullptr) {
        std::unique_ptr<workloads::PerformanceModel> model;
        if (options_.backend == harness::ModelBackend::Analytic)
            model = std::make_unique<workloads::AnalyticModel>();
        else
            model = std::make_unique<workloads::QueueingSimModel>();
        node.server = std::make_unique<platform::SimulatedServer>(
            config_, std::vector<workloads::JobSpec>{job.spec},
            std::move(model), nodeSeed(n), options_.noise_sigma);
        core::CliteOptions clite_options = options_.clite;
        clite_options.seed = SplitMix64(nodeSeed(n)).next();
        if (options_.node_budget_seconds > 0.0)
            clite_options.budget.budget_seconds =
                options_.node_budget_seconds;
        // Coarse search probes are a DES-only economy: the analytic
        // backend has no event bill, and forcing the knob there would
        // change nothing but reads as if it did.
        if (options_.backend == harness::ModelBackend::Des)
            clite_options.search_event_budget =
                options_.search_event_budget;
        core::MonitorOptions monitor_options = options_.monitor;
        store::ProfileStore* store = nullptr;
        if (options_.shared_store) {
            // Nodes READ the shared store from the pool (phase B);
            // writes happen only in the fleet's serial phase C, so
            // auto-checkpointing from pool threads is disabled.
            store = &store_;
            monitor_options.auto_checkpoint = false;
        }
        node.manager = std::make_unique<core::OnlineManager>(
            *node.server, std::move(clite_options), monitor_options,
            store);
        node.initialized = false;
        // First-window jitter: node windows execute on pool workers
        // whose thread_local measurement slab and GP scratch arena
        // start empty, so a node's first search would pay every
        // growth reallocation inside its hottest loops. Pre-warm all
        // workers (and this thread) once per offered-rate high-water
        // mark — a handful of broadcasts across a whole fleet.
        if (options_.backend == harness::ModelBackend::Des &&
            job.spec.isLatencyCritical() &&
            job.spec.offeredQps() > prewarmed_qps_) {
            prewarmed_qps_ = job.spec.offeredQps();
            const double qps = prewarmed_qps_;
            const int cores = config_.physical_cores;
            globalPool().broadcast([qps, cores] {
                // ~2 s observation window (QueueingSimModel default);
                // fine-mode validation windows measure the full span.
                sim::prewarmMeasurementScratch(
                    cores, size_t(qps * 2.0) + 64);
                ScratchArena::forCurrentThread().reserve(64 * 1024);
            });
        }
    } else {
        node.server->addJob(job.spec);
        // A pre-initialization add needs no notification: the initial
        // search covers the full mix (and must not read as a
        // mix-change trigger at the first tick).
        if (node.initialized)
            node.manager->notifyMixChange();
    }
    node.job_ids.push_back(id);
    job.state = JobState::Placed;
    job.node = int(n);
}

void
Fleet::unhostJob(size_t n, size_t idx)
{
    Node& node = nodes_[n];
    CLITE_CHECK(idx < node.job_ids.size(),
                "job index " << idx << " out of range on node " << n);
    if (node.job_ids.size() == 1) {
        // The server requires >= 1 job; an emptied node tears down its
        // server and manager and is lazily re-created on the next
        // placement.
        node.manager.reset();
        node.server.reset();
        node.job_ids.clear();
        node.initialized = false;
        node.truth.clear();
        node.truth_score = 0.0;
        node.truth_qos = false;
        return;
    }
    node.server->removeJob(idx);
    if (node.initialized)
        node.manager->notifyJobRemoved(idx);
    node.job_ids.erase(node.job_ids.begin() + std::ptrdiff_t(idx));
}

void
Fleet::stepNode(size_t n)
{
    Node& node = nodes_[n];
    node.searched = false;
    node.reoptimized = false;
    if (node.server == nullptr) {
        node.truth.clear();
        node.truth_score = 0.0;
        node.truth_qos = false;
        return;
    }
    if (!node.initialized) {
        node.manager->initialize();
        node.initialized = true;
        node.searched = true;
    } else {
        core::OnlineManager::Tick t = node.manager->tick();
        node.searched = t.reoptimized;
        node.reoptimized = t.reoptimized;
    }
    // Ground-truth view of the incumbent for fleet metrics and the
    // headroom surrogate's training signal (noise-free, so the
    // scheduler learns the partition quality, not the noise).
    node.truth = node.server->observeNoiseless(node.manager->incumbent());
    core::ScoreBreakdown sb = core::scoreObservations(node.truth);
    node.truth_score = sb.score;
    node.truth_qos = sb.all_qos_met;
}

void
Fleet::rescheduleNode(size_t n, FleetWindow& w,
                      const std::vector<char>* avoid)
{
    Node& node = nodes_[n];
    if (!node.searched || node.server == nullptr)
        return;
    const core::ControllerResult& r = node.manager->lastResult();
    if (!r.infeasible_detected || r.infeasible_jobs.empty())
        return;
    // Descending index order keeps the remaining reported indices
    // valid as rows shift down.
    std::vector<size_t> evict = r.infeasible_jobs;
    std::sort(evict.begin(), evict.end(), std::greater<size_t>());
    for (size_t idx : evict) {
        if (idx >= node.job_ids.size())
            continue;
        uint64_t id = node.job_ids[idx];
        FleetJob& job = jobs_[size_t(id) - 1];
        bool alone = node.job_ids.size() == 1;
        unhostJob(n, idx);
        ++evictions_;
        ++w.evicted;
        ++job.moves;
        job.state = JobState::Pending;
        job.node = -1;
        if (alone || job.moves > options_.max_moves) {
            // Infeasible with the whole machine to itself — no node
            // can serve it — or it has ping-ponged past the move
            // budget. Park it (still tracked, reported unplaceable)
            // instead of thrashing the fleet.
            job.state = JobState::Parked;
            ++w.parked;
            CLITE_LOG_WARN("fleet: parking job "
                           << id << " (" << job.spec.label() << "): "
                           << (alone ? "infeasible even alone"
                                     : "move budget exhausted"));
        } else if (tryPlace(id, int(n), avoid)) {
            ++w.rescheduled;
        } else {
            queue_.push_back(id);
        }
    }
}

FleetWindow
Fleet::tick()
{
    FleetWindow w;
    w.window = ++windows_;

    // Phase A (serial): place queued jobs — new arrivals and evicted
    // jobs a previous window could not re-place.
    w.placed = placeQueued();

    // Phase B (parallel): every node runs its observation window.
    // stepNode(n) touches only node n's state, so the fan-out meets
    // the pool's determinism contract. Nodes are claimed in contiguous
    // blocks rather than one at a time: at fleet sizes well past the
    // thread count this cuts task-claim traffic without hurting
    // balance, and the per-thread scratch arenas warmed by a block's
    // first window are reused by the rest of it.
    {
        ThreadPool& pool = globalPool();
        const size_t threads = size_t(pool.threadCount());
        const size_t grain =
            std::max<size_t>(1, nodes_.size() / (threads * 4));
        pool.parallelForBlocked(nodes_.size(), grain,
                                [this](size_t begin, size_t end) {
                                    for (size_t n = begin; n < end; ++n)
                                        stepNode(n);
                                });
    }

    // Phase C (serial): aggregate, learn, reschedule.
    int lc_total = 0, lc_met = 0, bg_total = 0;
    double bg_perf_sum = 0.0;
    for (const Node& node : nodes_) {
        if (node.searched)
            ++w.reoptimizations;
        if (node.reoptimized)
            ++reoptimizations_;
        for (const platform::JobObservation& ob : node.truth) {
            if (ob.is_lc) {
                ++lc_total;
                if (ob.qosMet())
                    ++lc_met;
            } else {
                ++bg_total;
                bg_perf_sum += ob.perfNorm();
            }
        }
    }
    w.qos_met_fraction = lc_total > 0 ? double(lc_met) / lc_total : 1.0;
    w.mean_bg_perf = bg_total > 0 ? bg_perf_sum / bg_total : 0.0;

    {
        std::vector<NodeSnapshot> snaps;
        snaps.reserve(nodes_.size());
        for (size_t n = 0; n < nodes_.size(); ++n)
            snaps.push_back(snapshot(n));
        scheduler_.recordWindow(snaps);
    }

    // Checkpoint collection (serial, node-index order): the only
    // writer of the shared store. Runs before rescheduling so the
    // mixes this window learned — including the evicting node's — are
    // available to whichever node a re-placed job lands on.
    if (options_.shared_store)
        for (Node& node : nodes_)
            if (node.initialized && node.server != nullptr)
                store_.put(node.manager->makeCheckpoint());

    // Rescheduling: act on the per-node infeasibility signal. A node
    // whose search this window proved an LC job cannot meet QoS there
    // evicts it.
    for (size_t n = 0; n < nodes_.size(); ++n)
        rescheduleNode(n, w);

    w.pending = int(queue_.size());
    for (const FleetJob& job : jobs_)
        if (job.state == JobState::Placed)
            ++w.placed_total;
    history_.push_back(w);
    return w;
}

FleetSummary
Fleet::summarize() const
{
    FleetSummary s;
    s.windows = windows_;
    s.jobs_admitted = int(jobs_.size());
    for (const FleetJob& job : jobs_) {
        if (job.state == JobState::Placed)
            ++s.jobs_placed;
        else if (job.state == JobState::Pending)
            ++s.jobs_pending;
        else
            ++s.jobs_parked;
    }
    s.evictions = evictions_;
    s.reoptimizations = reoptimizations_;
    for (const FleetWindow& w : history_) {
        s.qos_met_fraction.add(w.qos_met_fraction);
        s.bg_perf.add(w.mean_bg_perf);
    }
    return s;
}

std::string
Fleet::digest() const
{
    std::ostringstream out;
    char buf[64];
    for (size_t n = 0; n < nodes_.size(); ++n) {
        const Node& node = nodes_[n];
        out << "n" << n << "{";
        if (node.server == nullptr) {
            out << "empty";
        } else {
            for (size_t i = 0; i < node.job_ids.size(); ++i)
                out << (i ? "," : "") << node.job_ids[i];
            out << "|" << node.server->currentAllocation().key();
            std::snprintf(buf, sizeof(buf), "%.17g", node.truth_score);
            out << "|" << buf << (node.truth_qos ? "+" : "-");
        }
        out << "} ";
    }
    out << "queue[";
    for (size_t i = 0; i < queue_.size(); ++i)
        out << (i ? "," : "") << queue_[i];
    out << "] parked[";
    bool first = true;
    for (const FleetJob& job : jobs_)
        if (job.state == JobState::Parked) {
            out << (first ? "" : ",") << job.id;
            first = false;
        }
    out << "]";
    return out.str();
}

} // namespace cluster
} // namespace clite

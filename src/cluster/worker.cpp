#include "cluster/worker.h"

#include "common/error.h"

namespace clite {
namespace cluster {

const char*
workerStateName(WorkerState state)
{
    switch (state) {
      case WorkerState::Idle:
        return "idle";
      case WorkerState::Busy:
        return "busy";
      case WorkerState::Dead:
        return "dead";
    }
    return "unknown";
}

WorkerPool::WorkerPool(int workers)
    : workers_(size_t(workers < 1 ? 1 : workers))
{
}

int
WorkerPool::aliveCount() const
{
    int n = 0;
    for (const Worker& w : workers_)
        if (w.state != WorkerState::Dead)
            ++n;
    return n;
}

int
WorkerPool::idleCount() const
{
    int n = 0;
    for (const Worker& w : workers_)
        if (w.state == WorkerState::Idle)
            ++n;
    return n;
}

int
WorkerPool::findIdle() const
{
    for (size_t w = 0; w < workers_.size(); ++w)
        if (workers_[w].state == WorkerState::Idle)
            return int(w);
    return -1;
}

void
WorkerPool::assign(int w, uint64_t task)
{
    Worker& worker = workers_.at(size_t(w));
    CLITE_CHECK(worker.state == WorkerState::Idle,
                "worker " << w << " is " << workerStateName(worker.state)
                          << ", cannot assign task " << task);
    worker.state = WorkerState::Busy;
    worker.current_task = task;
    ++worker.assignments;
}

void
WorkerPool::release(int w)
{
    Worker& worker = workers_.at(size_t(w));
    if (worker.state != WorkerState::Busy)
        return; // already dead (killed mid-task) — nothing to release
    worker.state = WorkerState::Idle;
    worker.current_task = 0;
}

void
WorkerPool::kill(int w)
{
    Worker& worker = workers_.at(size_t(w));
    worker.state = WorkerState::Dead;
    worker.current_task = 0;
    ++worker.losses;
}

void
WorkerPool::revive(int w)
{
    Worker& worker = workers_.at(size_t(w));
    if (worker.state == WorkerState::Dead) {
        worker.state = WorkerState::Idle;
        worker.current_task = 0;
    }
}

const Worker&
WorkerPool::worker(int w) const
{
    return workers_.at(size_t(w));
}

} // namespace cluster
} // namespace clite

#include "cluster/scheduler.h"

#include <algorithm>

#include "common/error.h"
#include "gp/kernel.h"

namespace clite {
namespace cluster {

const char*
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::BestFitHeadroom:
        return "best-fit-headroom";
      case PlacementPolicy::LeastLoaded:
        return "least-loaded";
      case PlacementPolicy::RoundRobin:
        return "round-robin";
    }
    return "unknown";
}

NodeSnapshot
NodeSnapshot::withJob(const workloads::JobSpec& spec) const
{
    NodeSnapshot s = *this;
    ++s.job_count;
    if (spec.isLatencyCritical()) {
        ++s.lc_jobs;
        s.lc_load_sum += spec.load_fraction;
    } else {
        ++s.bg_jobs;
    }
    return s;
}

HeadroomModel::HeadroomModel(PlacementOptions options)
    : options_(options)
{
    CLITE_CHECK(options_.min_model_samples >= 1,
                "min_model_samples must be >= 1");
    CLITE_CHECK(options_.max_model_samples >= options_.min_model_samples,
                "max_model_samples must be >= min_model_samples");
}

linalg::Vector
HeadroomModel::features(const NodeSnapshot& snapshot)
{
    // Normalized to roughly [0, 1] so the fixed length-scale fits:
    // occupancy relative to capacity, total LC load (a 10-core node
    // saturates well below load sum ~3), and the LC/BG mix.
    double cap = double(std::max<size_t>(snapshot.capacity, 1));
    return {double(snapshot.job_count) / cap,
            snapshot.lc_load_sum / 3.0,
            snapshot.job_count > 0
                ? double(snapshot.bg_jobs) / double(snapshot.job_count)
                : 0.0};
}

HeadroomModel::NodeModel&
HeadroomModel::nodeModel(size_t node)
{
    if (models_.size() <= node)
        models_.resize(node + 1);
    return models_[node];
}

void
HeadroomModel::observe(const NodeSnapshot& snapshot)
{
    NodeModel& m = nodeModel(snapshot.node);
    m.x.push_back(features(snapshot));
    m.y.push_back(snapshot.last_score);
    if (int(m.x.size()) > options_.max_model_samples) {
        m.x.erase(m.x.begin());
        m.y.erase(m.y.begin());
    }
    m.stale = true;
}

bool
HeadroomModel::ready(size_t node) const
{
    return node < models_.size() &&
           int(models_[node].x.size()) >= options_.min_model_samples;
}

size_t
HeadroomModel::sampleCount(size_t node) const
{
    return node < models_.size() ? models_[node].x.size() : 0;
}

double
HeadroomModel::predictScore(const NodeSnapshot& hypothetical) const
{
    CLITE_CHECK(ready(hypothetical.node),
                "node " << hypothetical.node
                        << " has too few windows for headroom "
                           "prediction");
    NodeModel& m = models_[hypothetical.node];
    if (m.stale || m.gp == nullptr) {
        if (m.gp == nullptr) {
            // Fixed hyper-parameters: scores live in [0, 1] and the
            // features are roughly unit-scaled, so a medium RBF
            // length-scale generalizes without a likelihood fit —
            // keeping the prediction a deterministic pure function of
            // the observation sequence.
            std::unique_ptr<gp::Kernel> kernel =
                gp::makeKernel("rbf", 3, 0.5);
            kernel->setIsotropic(true);
            m.gp = std::make_unique<gp::GaussianProcess>(
                std::move(kernel), 1e-3);
        }
        // fitIncremental recognizes the common pure-append history and
        // extends in O(n²); a ring-buffer eviction falls back to a
        // full refit.
        m.gp->fitIncremental(m.x, m.y);
        m.stale = false;
    }
    return m.gp->predict(features(hypothetical)).mean;
}

ClusterScheduler::ClusterScheduler(PlacementOptions options)
    : options_(options), model_(options)
{
}

void
ClusterScheduler::recordWindow(const std::vector<NodeSnapshot>& nodes)
{
    for (const NodeSnapshot& s : nodes)
        recordNode(s);
}

void
ClusterScheduler::recordNode(const NodeSnapshot& node)
{
    if (node.job_count > 0)
        model_.observe(node);
}

int
ClusterScheduler::place(const workloads::JobSpec& spec,
                        const std::vector<NodeSnapshot>& nodes, int exclude)
{
    // Candidate set: nodes with unit budget for one more job. The
    // excluded (source) node is only eligible when it is the sole
    // option — better to retry the node that evicted the job than to
    // drop it.
    std::vector<const NodeSnapshot*> candidates;
    for (const NodeSnapshot& s : nodes)
        if (s.canHost() && int(s.node) != exclude)
            candidates.push_back(&s);
    if (candidates.empty()) {
        for (const NodeSnapshot& s : nodes)
            if (s.canHost())
                candidates.push_back(&s);
    }
    if (candidates.empty())
        return -1;

    auto least_loaded = [&]() {
        const NodeSnapshot* best = candidates[0];
        for (const NodeSnapshot* s : candidates) {
            if (s->lc_load_sum < best->lc_load_sum ||
                (s->lc_load_sum == best->lc_load_sum &&
                 (s->job_count < best->job_count ||
                  (s->job_count == best->job_count &&
                   s->node < best->node))))
                best = s;
        }
        return int(best->node);
    };

    switch (options_.policy) {
      case PlacementPolicy::RoundRobin: {
        // Rotate over the feasible nodes in index order.
        std::vector<const NodeSnapshot*> sorted = candidates;
        std::sort(sorted.begin(), sorted.end(),
                  [](const NodeSnapshot* a, const NodeSnapshot* b) {
                      return a->node < b->node;
                  });
        const NodeSnapshot* pick = sorted[rr_cursor_ % sorted.size()];
        ++rr_cursor_;
        return int(pick->node);
      }
      case PlacementPolicy::LeastLoaded:
        return least_loaded();
      case PlacementPolicy::BestFitHeadroom: {
        // Best fit = the node predicted to retain the highest Eq. 3
        // score with the job on board. Nodes without a trained
        // surrogate cannot bid; when none can, fall back to
        // least-loaded (the cold-start path).
        const NodeSnapshot* best = nullptr;
        double best_pred = 0.0;
        for (const NodeSnapshot* s : candidates) {
            if (!model_.ready(s->node))
                continue;
            double pred = model_.predictScore(s->withJob(spec));
            if (best == nullptr || pred > best_pred ||
                (pred == best_pred && s->node < best->node)) {
                best = s;
                best_pred = pred;
            }
        }
        return best != nullptr ? int(best->node) : least_loaded();
      }
    }
    return least_loaded();
}

} // namespace cluster
} // namespace clite

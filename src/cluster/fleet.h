/**
 * @file
 * A fleet of CLITE nodes with QoS-aware admission and rescheduling.
 *
 * Fleet scales the reproduction from one server to a cluster: N
 * SimulatedServers, each wrapped in its own OnlineManager (the
 * steady-state per-node control loop), advanced in lockstep
 * observation windows. Each window:
 *
 *  1. **Admission (serial).** Queued jobs — new arrivals and evicted
 *     jobs awaiting rescheduling — are placed onto nodes by the
 *     ClusterScheduler (best-fit on GP-predicted headroom, falling
 *     back to least-loaded). A job that fits nowhere stays queued;
 *     nothing is ever dropped.
 *  2. **Node windows (parallel).** Every occupied node runs one
 *     OnlineManager step (the initial search for fresh nodes, one
 *     monitoring tick otherwise) fanned out on the global thread
 *     pool. Node i's step touches only node i's state, so the fleet
 *     window is bit-identical to a serial run at any thread count —
 *     the same contract the BO hot path and figure sweeps rely on.
 *  3. **Rescheduling (serial).** A node whose search proved an LC job
 *     cannot be co-located there (QoS missed even at the
 *     maximum-allocation extremum — the paper's "schedule it
 *     elsewhere" signal, now acted on) evicts that job. The evicted
 *     job is placed onto another node with predicted headroom; both
 *     source and destination adapt through incumbent-seeded
 *     re-optimizations at their next window. A job evicted more than
 *     max_moves times (or infeasible even alone on a node) is parked:
 *     it stays in the registry, reported as unplaceable, rather than
 *     ping-ponging through the fleet.
 *
 * Fleet-level metrics (QoS-met fraction over LC jobs, mean BG
 * normalized throughput) are ground-truth values from noise-free
 * observation of each node's incumbent, aggregated with
 * stats::RunningStats.
 */

#ifndef CLITE_CLUSTER_FLEET_H
#define CLITE_CLUSTER_FLEET_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/scheduler.h"
#include "core/monitor.h"
#include "harness/schemes.h"
#include "stats/summary.h"

namespace clite {
namespace cluster {

class AsyncFleetEngine;

/** Fleet construction and behaviour knobs. */
struct FleetOptions
{
    /** Number of nodes (homogeneous; each the Table 2 testbed). */
    int nodes = 4;
    /** Performance-model backend for every node. */
    harness::ModelBackend backend = harness::ModelBackend::Analytic;
    /** 6-resource config instead of 3. */
    bool all_resources = false;
    /** Per-node measurement noise. */
    double noise_sigma = 0.03;
    /** Fleet seed; per-node noise/controller seeds derive from it. */
    uint64_t seed = 1;
    /** Per-node CLITE knobs (budgets; seed is overridden per node). */
    core::CliteOptions clite;
    /**
     * Per-node search budget in window-seconds (bo/budget.h),
     * overriding clite.budget.budget_seconds on every node when > 0:
     * each node's searches are budget-bounded with cost-normalized
     * acquisition and mid-window early-abort. 0 (the default) leaves
     * clite.budget untouched — unlimited unless set there explicitly.
     */
    double node_budget_seconds = 0.0;
    /**
     * DES event budget for node SEARCH probe windows (coarse mode,
     * docs/MODEL.md): with the DES backend every node's bootstrap,
     * BO and polish windows measure under the budget while
     * validation and monitoring windows stay fine-mode, cutting the
     * per-search event bill at fleet scale. Applied only when
     * backend == Des (the analytic backend has no event bill);
     * overrides clite.search_event_budget on every node. Set 0 to
     * run every window fine-mode. The default is the 25% p95
     * accuracy band operating point pinned by
     * tests/sim/queueing_budget_test.cpp.
     */
    uint64_t search_event_budget = 2000;
    /** Per-node monitoring knobs. */
    core::MonitorOptions monitor;
    /** Placement knobs. */
    PlacementOptions placement;
    /** Evictions a job may suffer before it is parked. */
    int max_moves = 3;
    /**
     * Share one warm-start profile store across all nodes: every
     * node's search seeds from fleet-wide prior knowledge of its job
     * mix (an evicted job's destination node warm-starts from the
     * checkpoints its mix accumulated anywhere in the fleet). Store
     * writes happen only in the serial aggregation phase in node-index
     * order, so determinism across thread counts is preserved.
     */
    bool shared_store = true;
};

/** Where a job currently is. */
enum class JobState {
    Pending, ///< Awaiting placement (queued).
    Placed,  ///< Running on a node.
    Parked,  ///< Unplaceable (move limit or infeasible alone).
};

/** Printable state name ("pending", "placed", "parked"). */
const char* jobStateName(JobState state);

/** One job's cluster-level record. */
struct FleetJob
{
    uint64_t id = 0;            ///< Fleet-wide id (1-based, dense).
    workloads::JobSpec spec;    ///< What the job is.
    JobState state = JobState::Pending;
    int node = -1;              ///< Hosting node (Placed only).
    int moves = 0;              ///< Evictions suffered so far.
};

/** Outcome of one fleet window. */
struct FleetWindow
{
    int window = 0;          ///< 1-based window number.
    int placed = 0;          ///< Jobs placed this window.
    int evicted = 0;         ///< Jobs evicted for rescheduling.
    int rescheduled = 0;     ///< Evicted jobs re-placed this window.
    int parked = 0;          ///< Jobs parked this window.
    int reoptimizations = 0; ///< Node searches run this window.
    int pending = 0;         ///< Queue depth after the window.
    /** Ground-truth fraction of placed LC jobs meeting QoS (1 when
     *  none are placed). */
    double qos_met_fraction = 1.0;
    /** Ground-truth mean BG normalized performance (0 when no BG). */
    double mean_bg_perf = 0.0;
    /** Placed jobs at the end of the window. */
    int placed_total = 0;
};

/** Aggregates over a run (reusing stats/summary). */
struct FleetSummary
{
    int windows = 0;             ///< Windows ticked.
    int jobs_admitted = 0;       ///< Jobs ever admitted.
    int jobs_placed = 0;         ///< Currently placed.
    int jobs_pending = 0;        ///< Currently queued.
    int jobs_parked = 0;         ///< Currently parked.
    int evictions = 0;           ///< Total evictions.
    int reoptimizations = 0;     ///< Total node searches after init.
    stats::RunningStats qos_met_fraction; ///< Per-window QoS fraction.
    stats::RunningStats bg_perf;          ///< Per-window mean BG perf.
};

/**
 * The multi-node co-location fleet.
 */
class Fleet
{
  public:
    explicit Fleet(FleetOptions options = {});

    /** Number of nodes. */
    size_t nodeCount() const { return nodes_.size(); }

    /** The options in effect. */
    const FleetOptions& options() const { return options_; }

    /**
     * Submit a job to the cluster. It is queued and placed at the
     * next tick()'s admission phase.
     * @return The job's fleet-wide id.
     */
    uint64_t admit(const workloads::JobSpec& spec);

    /** Advance the whole fleet by one lockstep observation window. */
    FleetWindow tick();

    /**
     * Change a placed job's offered load (diurnal drift). The hosting
     * node's manager reacts through its load-drift trigger at its
     * next window.
     * @pre job(id).state == JobState::Placed
     */
    void setJobLoad(uint64_t id, double load_fraction);

    /** All job records (index = id - 1). */
    const std::vector<FleetJob>& jobs() const { return jobs_; }

    /** One job's record. @throws clite::Error for an unknown id. */
    const FleetJob& job(uint64_t id) const;

    /** Ids hosted by node @p n, in server job-index order. */
    const std::vector<uint64_t>& nodeJobIds(size_t n) const;

    /** Node @p n's server (nullptr while the node is empty). */
    const platform::SimulatedServer* nodeServer(size_t n) const;

    /** Node @p n's manager (nullptr while the node is empty). */
    const core::OnlineManager* nodeManager(size_t n) const;

    /** Windows ticked so far. */
    int windows() const { return windows_; }

    /** Per-window metrics history. */
    const std::vector<FleetWindow>& history() const { return history_; }

    /** Aggregate the run so far. */
    FleetSummary summarize() const;

    /** The placement engine (for tests / introspection). */
    const ClusterScheduler& scheduler() const { return scheduler_; }

    /** The fleet-wide warm-start store (inert when !shared_store). */
    const store::ProfileStore& profileStore() const { return store_; }
    store::ProfileStore& profileStore() { return store_; }

    /**
     * Deterministic fingerprint of the full fleet state: per-node job
     * placements, programmed allocations and ground-truth scores plus
     * the queue and parked lists. Two runs with equal digests made
     * bit-identical decisions — the serial-vs-parallel equality
     * tests compare exactly this.
     */
    std::string digest() const;

  private:
    // The async manager-worker engine drives the same node substrate
    // (hostJob/unhostJob/stepNode/placeQueued/rescheduleNode) through
    // its own per-node commit pipeline instead of tick()'s lockstep
    // phases.
    friend class AsyncFleetEngine;

    struct Node
    {
        std::unique_ptr<platform::SimulatedServer> server;
        std::unique_ptr<core::OnlineManager> manager;
        std::vector<uint64_t> job_ids; ///< Parallel to server indices.
        bool initialized = false;
        /** Did this window run a search (initialize or reoptimize)? */
        bool searched = false;
        /** Did this window re-optimize (post-initialization search)? */
        bool reoptimized = false;
        /** Ground-truth observations of the incumbent (this window). */
        std::vector<platform::JobObservation> truth;
        double truth_score = 0.0;
        bool truth_qos = false;
    };

    /** Per-node deterministic seed. */
    uint64_t nodeSeed(size_t n) const;

    /** Snapshot of node @p n for the scheduler. */
    NodeSnapshot snapshot(size_t n) const;

    /**
     * Place job @p id if possible. @return True when placed.
     * @param avoid Optional per-node mask; true entries are not
     *     candidates (the async engine's quarantine filter).
     */
    bool tryPlace(uint64_t id, int exclude,
                  const std::vector<char>* avoid = nullptr);

    /**
     * One admission pass over the queue (phase A): every pending job
     * gets one placement attempt; a job that fits nowhere returns to
     * the tail. @return Jobs placed.
     */
    int placeQueued(const std::vector<char>* avoid = nullptr);

    /** Put @p id onto node @p n (creates the node when empty). */
    void hostJob(uint64_t id, size_t n);

    /** Remove server index @p idx from node @p n (may empty it). */
    void unhostJob(size_t n, size_t idx);

    /** Run node @p n's window (phase B; called from the pool). */
    void stepNode(size_t n);

    /**
     * Act on node @p n's infeasibility signal (the per-node slice of
     * phase C): evict the reported jobs, re-place or park them,
     * accumulating counters into @p w. No-op unless the node searched
     * this window and reported infeasible jobs.
     */
    void rescheduleNode(size_t n, FleetWindow& w,
                        const std::vector<char>* avoid = nullptr);

    FleetOptions options_;
    platform::ServerConfig config_;
    size_t node_capacity_ = 0; ///< Max jobs per node (unit budget).

    ClusterScheduler scheduler_;
    store::ProfileStore store_; ///< Fleet-shared warm-start priors.
    std::vector<Node> nodes_;
    std::vector<FleetJob> jobs_;
    std::deque<uint64_t> queue_; ///< Pending ids, FIFO.

    int windows_ = 0;
    int evictions_ = 0;
    int reoptimizations_ = 0;
    /**
     * Largest offered QPS the per-thread measurement scratch has been
     * pre-warmed for (DES backend): hostJob() broadcasts a prewarm to
     * every pool worker only when a new job's rate exceeds this
     * high-water mark, so the broadcasts are few and the first window
     * of every node runs allocation-free.
     */
    double prewarmed_qps_ = 0.0;
    std::vector<FleetWindow> history_;
};

} // namespace cluster
} // namespace clite

#endif // CLITE_CLUSTER_FLEET_H

/**
 * @file
 * The manager's queue of serialized per-node window tasks.
 *
 * Following the Work Queue shape (cctools): the manager serializes
 * each node's next observation window into a WindowTask; workers pull
 * tasks and stream results back; the queue itself is a passive,
 * deterministic container — all policy (leases, retries, hedging,
 * degradation) lives in the engine.
 *
 * Ordering: a two-class FIFO. Tasks for QoS-critical nodes (hosting
 * at least one latency-critical job) form the priority class; under
 * graceful degradation the engine dispatches only that class.
 * Retries and hedges enter at the front of their class — they are
 * late already. Every operation is a pure function of the call
 * sequence, so two runs that make identical calls see identical pop
 * orders (the engine's reproducibility rests on this).
 *
 * Tasks are referenced by id; the engine owns the authoritative task
 * records. A task cancelled after enqueue (e.g. its window was
 * committed by a sibling attempt) is lazily skipped at pop time via
 * the engine-supplied liveness check.
 */

#ifndef CLITE_CLUSTER_TASK_QUEUE_H
#define CLITE_CLUSTER_TASK_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

namespace clite {
namespace cluster {

/** Where a window task is in its lifecycle (engine bookkeeping). */
enum class TaskState {
    Queued,    ///< Waiting in the TaskQueue.
    Running,   ///< Assigned to a worker, lease active.
    Committed, ///< Result delivered; the window advanced.
    Superseded,///< A sibling attempt committed first (hedge loser, late straggler).
    Lost,      ///< The assigned worker died; the lease reclaimed it.
    Failed,    ///< Completed unsuccessfully at the node.
    Dropped,   ///< Shed under graceful degradation (never dispatched).
};

/** Printable state name ("queued", "running", ...). */
const char* taskStateName(TaskState state);

/** One serialized per-node observation-window task. */
struct WindowTask
{
    uint64_t id = 0;      ///< Engine-wide unique task id.
    size_t node = 0;      ///< Node whose window this runs.
    uint64_t epoch = 0;   ///< Node-local window number (0-based).
    int attempt = 0;      ///< 0 = original; >0 = retry after a loss.
    bool hedge = false;   ///< Speculative duplicate of a slow task.
    /** Node hosted >= 1 LC job at enqueue (priority class). */
    bool critical = false;
};

/**
 * Two-class FIFO of pending task ids.
 */
class TaskQueue
{
  public:
    /** Append @p task to the tail of its class. */
    void push(const WindowTask& task);

    /** Insert @p task at the front of its class (retries, hedges). */
    void pushFront(const WindowTask& task);

    /**
     * Pop the next dispatchable task id. Critical-class tasks always
     * dispatch before normal ones; with @p critical_only (graceful
     * degradation) normal tasks are left queued. Tasks for which
     * @p alive returns false are discarded silently (lazily cancelled).
     * @return The task id, or nullopt when nothing is dispatchable.
     */
    std::optional<uint64_t>
    pop(bool critical_only,
        const std::function<bool(uint64_t)>& alive);

    /**
     * Remove every queued normal-class task (graceful degradation
     * sheds the non-critical backlog rather than stalling it).
     * @return The removed ids, in queue order.
     */
    std::vector<uint64_t> dropNormal();

    /** Queued tasks in the critical class. */
    size_t criticalSize() const { return critical_.size(); }

    /** Queued tasks in the normal class. */
    size_t normalSize() const { return normal_.size(); }

    /** Total queued tasks (including lazily cancelled ones). */
    size_t size() const { return critical_.size() + normal_.size(); }

    bool empty() const { return critical_.empty() && normal_.empty(); }

  private:
    std::deque<uint64_t> critical_;
    std::deque<uint64_t> normal_;
};

} // namespace cluster
} // namespace clite

#endif // CLITE_CLUSTER_TASK_QUEUE_H

/**
 * @file
 * Common interface for co-location scheduling policies.
 *
 * CLITE and every competing policy of Sec. 5.1 (ORACLE, PARTIES,
 * Heracles, RAND+, GENETIC) implement Controller: given a server with
 * co-located jobs, search resource-partition configurations and leave
 * the server programmed with the best one found. The per-sample trace
 * feeds the convergence (Fig. 9b, 15b), overhead (Fig. 15a), and
 * variability (Fig. 11) analyses.
 */

#ifndef CLITE_CORE_CONTROLLER_H
#define CLITE_CORE_CONTROLLER_H

#include <optional>
#include <string>
#include <vector>

#include "core/score.h"
#include "platform/allocation.h"
#include "platform/server.h"

namespace clite {
namespace core {

/** One evaluated configuration in a controller's search. */
struct SampleRecord
{
    platform::Allocation alloc;  ///< The configuration evaluated.
    double score = 0.0;          ///< Eq. 3 score observed.
    bool all_qos_met = false;    ///< Every LC job within target?
    std::vector<platform::JobObservation> observations; ///< Raw data.

    SampleRecord(platform::Allocation a, double s, bool met,
                 std::vector<platform::JobObservation> obs)
        : alloc(std::move(a)), score(s), all_qos_met(met),
          observations(std::move(obs))
    {
    }
};

/** Outcome of one controller run. */
struct ControllerResult
{
    std::optional<platform::Allocation> best; ///< Best configuration.
    double best_score = 0.0;     ///< Eq. 3 score of the best sample.
    bool feasible = false;       ///< A QoS-satisfying config was found.
    bool infeasible_detected = false; ///< Proven impossible (max-alloc miss).
    int samples = 0;             ///< Configurations evaluated.
    std::vector<SampleRecord> trace; ///< Every sample in order.

    /** Index into trace of the first sample meeting all QoS (-1 none). */
    int firstFeasibleSample() const;
};

/**
 * Abstract co-location scheduling policy.
 */
class Controller
{
  public:
    virtual ~Controller() = default;

    /** Policy name ("clite", "parties", ...). */
    virtual std::string name() const = 0;

    /**
     * Search partitions of @p server's resources among its jobs. On
     * return the server is left programmed with the best configuration
     * found.
     */
    virtual ControllerResult run(platform::SimulatedServer& server) = 0;
};

/**
 * Evaluate one allocation on the server and append a SampleRecord —
 * the shared "run the system for one observation period" step.
 */
SampleRecord evaluateSample(platform::SimulatedServer& server,
                            const platform::Allocation& alloc);

/**
 * Finish a run: pick the best-scoring sample from @p trace, re-apply
 * it to the server, and fill the result fields.
 */
ControllerResult finalizeResult(platform::SimulatedServer& server,
                                std::vector<SampleRecord> trace,
                                bool infeasible_detected = false);

} // namespace core
} // namespace clite

#endif // CLITE_CORE_CONTROLLER_H

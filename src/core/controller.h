/**
 * @file
 * Common interface for co-location scheduling policies.
 *
 * CLITE and every competing policy of Sec. 5.1 (ORACLE, PARTIES,
 * Heracles, RAND+, GENETIC) implement Controller: given a server with
 * co-located jobs, search resource-partition configurations and leave
 * the server programmed with the best one found. The per-sample trace
 * feeds the convergence (Fig. 9b, 15b), overhead (Fig. 15a), and
 * variability (Fig. 11) analyses.
 */

#ifndef CLITE_CORE_CONTROLLER_H
#define CLITE_CORE_CONTROLLER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/score.h"
#include "platform/allocation.h"
#include "platform/server.h"

namespace clite {
namespace core {

/**
 * What happened to one evaluated sample. Anything other than Ok means
 * the observation cannot be trusted: the configuration was never
 * programmed (ApplyFailed), the telemetry was lost (Dropout) or
 * repeats a previous window (Stale), or a co-located job was down
 * (Crashed). Fault-aware controllers quarantine such samples — they
 * stay in the trace for accounting but never feed the surrogate or
 * win the search.
 */
enum class SampleStatus
{
    Ok,          ///< Clean observation of the requested configuration.
    ApplyFailed, ///< Partition never programmed; observed the old one.
    Dropout,     ///< Measurement lost for the window.
    Stale,       ///< Frozen counters: telemetry repeats a past window.
    Crashed,     ///< A job was down during the window.
    /**
     * Window cancelled mid-measurement by the budget layer's
     * early-abort: the partial counters already proved it clearly
     * infeasible (bo/budget.h). The recorded observations are the
     * partial readings — real (if noisier) telemetry proving a
     * mode-1 score, so the budgeted search feeds them to its
     * surrogate to stay away from the violating region — but an
     * aborted sample can never win the search, and it is charged
     * only its elapsed cost.
     */
    Aborted,
};

/** Printable name of a sample status ("ok", "apply-failed", ...). */
const char* sampleStatusName(SampleStatus status);

/** One evaluated configuration in a controller's search. */
struct SampleRecord
{
    platform::Allocation alloc;  ///< The configuration evaluated.
    double score = 0.0;          ///< Eq. 3 score observed.
    bool all_qos_met = false;    ///< Every LC job within target?
    std::vector<platform::JobObservation> observations; ///< Raw data.
    SampleStatus status = SampleStatus::Ok; ///< Fault state (see above).
    int apply_retries = 0;       ///< Extra apply attempts consumed.
    double backoff_ms = 0.0;     ///< Modeled retry back-off time.
    /**
     * Observation-window seconds this sample cost the system: the
     * full window length for a completed window (0 until the
     * controller stamps it), exactly the elapsed fraction for an
     * early-aborted one. Violating samples' costs are the
     * QoS-violating sample-seconds the budget bench gates on.
     */
    double cost_seconds = 0.0;

    SampleRecord(platform::Allocation a, double s, bool met,
                 std::vector<platform::JobObservation> obs)
        : alloc(std::move(a)), score(s), all_qos_met(met),
          observations(std::move(obs))
    {
    }

    /** True when the sample may inform a search (status == Ok). */
    bool usable() const { return status == SampleStatus::Ok; }
};

/** Outcome of one controller run. */
struct ControllerResult
{
    std::optional<platform::Allocation> best; ///< Best configuration.
    double best_score = 0.0;     ///< Eq. 3 score of the best sample.
    bool feasible = false;       ///< A QoS-satisfying config was found.
    bool infeasible_detected = false; ///< Proven impossible (max-alloc miss).
    /**
     * Server job indices of the LC jobs that missed QoS even at their
     * maximum-allocation extremum (set when infeasible_detected): the
     * jobs a cluster scheduler must move to another node, since no
     * partition of THIS node can serve them alongside this job set.
     */
    std::vector<size_t> infeasible_jobs;
    int samples = 0;             ///< Configurations evaluated.
    std::vector<SampleRecord> trace; ///< Every sample in order.
    /**
     * The budget layer stopped the search (budget exhausted or the
     * lookahead proved no remaining probe could matter). Always false
     * for unbudgeted runs.
     */
    bool budget_exhausted = false;

    /**
     * Refit observability (filled by the CLITE controller, zero for
     * baselines): hyper-refits performed, probe objective evaluations
     * they consumed, warm-simplex probes that won outright (restarts
     * skipped), and observation windows measured in coarse
     * (event-budgeted) model mode. Printed by examples/cluster_sim so
     * cadence or subset-tier regressions are visible without a
     * profiler.
     */
    uint64_t refits = 0;
    uint64_t probe_evals = 0;
    uint64_t warm_probe_hits = 0;
    uint64_t coarse_windows = 0;

    /**
     * Index into trace of the first usable sample meeting all QoS
     * (-1 none). Quarantined samples never count: their QoS bits
     * describe faulted telemetry.
     */
    int firstFeasibleSample() const;

    /**
     * Observation windows burnt on faults: quarantined samples plus
     * apply retries (Fig. 15-style overhead under adverse conditions).
     */
    int wastedSamples() const;

    /** Total window-seconds charged across the trace. */
    double chargedSeconds() const;

    /**
     * Window-seconds spent while some LC job violated QoS: every
     * sample that is not a clean all-QoS-met window contributes its
     * cost (quarantined/aborted telemetry never certifies QoS). The
     * budget sweep's headline metric.
     */
    double violatingSampleSeconds() const;
};

/**
 * Abstract co-location scheduling policy.
 */
class Controller
{
  public:
    virtual ~Controller() = default;

    /** Policy name ("clite", "parties", ...). */
    virtual std::string name() const = 0;

    /**
     * Search partitions of @p server's resources among its jobs. On
     * return the server is left programmed with the best configuration
     * found.
     */
    virtual ControllerResult run(platform::SimulatedServer& server) = 0;
};

/**
 * Evaluate one allocation on the server and append a SampleRecord —
 * the shared "run the system for one observation period" step. The
 * record carries a SampleStatus derived from the server's honest
 * online signals (apply error code, missing/stale telemetry, crashed
 * processes); on a fault-free server it is always Ok.
 */
SampleRecord evaluateSample(platform::SimulatedServer& server,
                            const platform::Allocation& alloc);

/**
 * Build a SampleRecord from already-collected observations: score
 * them, then derive the SampleStatus from the server's online signals
 * exactly as evaluateSample() does (evaluateSample is this applied to
 * a fresh evaluate()). Lets callers that split apply/observe — the
 * budget layer's early-abort path peeks mid-window between the two —
 * share the status contract.
 */
SampleRecord recordFromObservations(
    const platform::SimulatedServer& server,
    const platform::Allocation& alloc,
    std::vector<platform::JobObservation> obs);

/**
 * evaluateSample() with bounded retry on transient apply failure:
 * each failed attempt backs off exponentially (modeled, accumulated
 * in SampleRecord::backoff_ms) and re-applies, up to @p max_retries
 * extra attempts. The returned record is the last attempt's; its
 * apply_retries counts the windows burnt.
 */
SampleRecord evaluateSampleResilient(platform::SimulatedServer& server,
                                     const platform::Allocation& alloc,
                                     int max_retries,
                                     double backoff_base_ms = 8.0);

/**
 * Finish a run: pick the best-scoring *usable* sample from @p trace,
 * re-apply it to the server, and fill the result fields. Quarantined
 * (non-Ok) samples are never eligible as the winner. When the trace
 * is empty or contains no usable sample, the result is a well-formed
 * infeasible outcome: best is empty, best_score is 0, feasible is
 * false, the trace is retained for accounting and the server is left
 * untouched. (`best == nullopt && !infeasible_detected` therefore
 * reads "the search produced no usable sample", while
 * infeasible_detected keeps its proven-impossible meaning.)
 */
ControllerResult finalizeResult(platform::SimulatedServer& server,
                                std::vector<SampleRecord> trace,
                                bool infeasible_detected = false,
                                std::vector<size_t> infeasible_jobs = {});

} // namespace core
} // namespace clite

#endif // CLITE_CORE_CONTROLLER_H

#include "core/score.h"

#include <algorithm>

#include "common/error.h"
#include "stats/summary.h"

namespace clite {
namespace core {

ScoreBreakdown
scoreObservations(const std::vector<platform::JobObservation>& obs)
{
    CLITE_CHECK(!obs.empty(), "cannot score an empty observation vector");

    ScoreBreakdown out;
    std::vector<double> qos_ratios;
    std::vector<double> bg_perf;
    std::vector<double> lc_perf;
    for (const auto& ob : obs) {
        if (ob.is_lc) {
            ++out.lc_jobs;
            qos_ratios.push_back(
                std::clamp(ob.qosRatio(), 1e-6, 1.0));
            lc_perf.push_back(std::clamp(ob.perfNorm(), 1e-6, 1.0));
        } else {
            ++out.bg_jobs;
            bg_perf.push_back(std::clamp(ob.perfNorm(), 1e-6, 1.0));
        }
    }

    out.all_qos_met = true;
    for (const auto& ob : obs)
        if (!ob.qosMet())
            out.all_qos_met = false;

    // Eq. 3 aggregates with the 1/N-weighted combination of the
    // per-job terms; Sec. 5.2 confirms the intent ("maximize the MEAN
    // performance of all the co-located BG jobs"). The arithmetic
    // mean also keeps mode 1 informative when one job is deeply
    // saturated — a geometric mean collapses the whole score to ~0
    // there, flattening the surface BO must climb.
    auto mean = [](const std::vector<double>& v) {
        if (v.empty())
            return 1.0;
        double s = 0.0;
        for (double x : v)
            s += x;
        return s / double(v.size());
    };

    out.qos_component = mean(qos_ratios);

    if (!out.all_qos_met) {
        // Mode 1: distance to feasibility, <= 0.5.
        out.score = 0.5 * out.qos_component;
        out.perf_component = 0.0;
        return out;
    }

    // Mode 2: feasible; optimize BG performance (or LC performance in
    // the all-LC case, N_BG -> N_LC).
    const std::vector<double>& perf = bg_perf.empty() ? lc_perf : bg_perf;
    out.perf_component = mean(perf);
    out.score = 0.5 + 0.5 * out.perf_component;
    return out;
}

double
score(const std::vector<platform::JobObservation>& obs)
{
    return scoreObservations(obs).score;
}

} // namespace core
} // namespace clite

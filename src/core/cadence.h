/**
 * @file
 * Adaptive hyper-refit cadence for the BO loop.
 *
 * Hyper-parameter refits are the most expensive per-iteration step at
 * large history (docs/PERF.md §5/§7): even through the subset probe
 * tier the winning vector is re-applied through one exact O(n³)
 * refit. They are also progressively less necessary — after a hundred
 * samples one more observation barely moves the marginal-likelihood
 * surface. The cadence therefore stretches with history: refit every
 *
 *     k(n) = base · min(4, 1 + n / stretch_threshold)
 *
 * iterations, where base is the controller's gp_fit_every. Below the
 * stretch threshold k(n) == base, i.e. exactly the fixed cadence the
 * controller always had — small-history traces (every golden) are
 * untouched.
 *
 * A *surprise* — an observation falling outside the surrogate's own
 * confidence band — means the current hyper-parameters misdescribe
 * the surface, so it forces the next refit early; never earlier than
 * base iterations after the previous one, which bounds the refit rate
 * from above by the original cadence.
 *
 * Contracts pinned by tests/core/cadence_test.cpp: the gap between
 * refits never exceeds k(n); a surprise forces a refit once at least
 * base iterations have passed; below the threshold the schedule is
 * bit-for-bit the historical iter % base == 0 one.
 */

#ifndef CLITE_CORE_CADENCE_H
#define CLITE_CORE_CADENCE_H

#include <algorithm>
#include <cstddef>

namespace clite {
namespace core {

class RefitCadence
{
  public:
    /**
     * @param base Refit period at small history (>= 1 enforced).
     * @param stretch_threshold History size where stretching starts;
     *        0 disables stretching entirely.
     */
    explicit RefitCadence(int base, size_t stretch_threshold = 96)
        : base_(base < 1 ? 1 : base), threshold_(stretch_threshold)
    {
    }

    /** k(n): the refit period at history size @p history. */
    int period(size_t history) const
    {
        if (threshold_ == 0 || history < threshold_)
            return base_;
        const int growth = 1 + int(history / threshold_);
        return base_ * std::min(4, growth);
    }

    /**
     * Advance one search iteration at history size @p history; true
     * means refit now. The first call always fires (the historical
     * schedule refit at iteration 0).
     */
    bool step(size_t history, bool surprise)
    {
        const bool due =
            since_ >= period(history) || (surprise && since_ >= base_);
        if (due) {
            since_ = 1;
            return true;
        }
        ++since_;
        return false;
    }

    /** Iterations since the last refit (counting the current one). */
    int sinceRefit() const { return since_; }

  private:
    int base_;
    size_t threshold_;
    int since_ = 1 << 20; ///< Saturated so the first step() refits.
};

} // namespace core
} // namespace clite

#endif // CLITE_CORE_CADENCE_H

#include "core/monitor.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace clite {
namespace core {

OnlineManager::OnlineManager(platform::SimulatedServer& server,
                             CliteOptions clite_options,
                             MonitorOptions options)
    : server_(server), clite_(std::move(clite_options)), options_(options)
{
    CLITE_CHECK(options_.violation_patience >= 1,
                "violation patience must be >= 1");
    CLITE_CHECK(options_.drift_patience >= 1, "drift patience must be >= 1");
    CLITE_CHECK(options_.load_drift_threshold > 0.0,
                "drift threshold must be > 0");
}

const ControllerResult&
OnlineManager::initialize()
{
    last_result_ = clite_.run(server_);
    captureReference();
    return *last_result_;
}

void
OnlineManager::captureReference()
{
    reference_rate_.assign(server_.jobCount(), 0.0);
    for (size_t j = 0; j < server_.jobCount(); ++j)
        if (server_.job(j).isLatencyCritical())
            reference_rate_[j] = server_.job(j).offeredQps();
    violation_streak_ = 0;
    drift_streak_ = 0;
}

const platform::Allocation&
OnlineManager::incumbent() const
{
    CLITE_CHECK(last_result_.has_value() && last_result_->best.has_value(),
                "OnlineManager::initialize() has not run");
    return *last_result_->best;
}

const ControllerResult&
OnlineManager::lastResult() const
{
    CLITE_CHECK(last_result_.has_value(),
                "OnlineManager::initialize() has not run");
    return *last_result_;
}

void
OnlineManager::reoptimize(const std::string& reason, bool mix_changed)
{
    CLITE_LOG_INFO("re-optimizing: " << reason);
    if (mix_changed) {
        // The incumbent's shape no longer matches the job set.
        last_result_ = clite_.run(server_);
    } else {
        last_result_ = clite_.reoptimize(server_, incumbent());
    }
    captureReference();
    mix_changed_ = false;
    ++reoptimizations_;
}

OnlineManager::Tick
OnlineManager::tick()
{
    CLITE_CHECK(last_result_.has_value(),
                "tick() before initialize()");
    ++windows_;

    Tick out;

    if (mix_changed_) {
        out.reoptimized = true;
        out.reason = "mix-change";
        reoptimize(out.reason, true);
        out.search_samples = last_result_->samples;
    }

    std::vector<platform::JobObservation> obs = server_.observe();
    ScoreBreakdown sb = scoreObservations(obs);
    out.all_qos_met = sb.all_qos_met;
    out.score = sb.score;
    if (out.reoptimized)
        return out;

    // QoS violation detection.
    violation_streak_ = sb.all_qos_met ? 0 : violation_streak_ + 1;

    // Load drift: compare each LC job's observed completion rate to
    // the rate the incumbent was optimized for. (Completions track
    // offered load while the job is unsaturated; when it IS saturated
    // the QoS check fires first.)
    bool drifting = false;
    for (size_t j = 0; j < obs.size(); ++j) {
        if (!obs[j].is_lc || reference_rate_[j] <= 0.0)
            continue;
        double rel = std::fabs(obs[j].throughput - reference_rate_[j]) /
                     reference_rate_[j];
        if (rel > options_.load_drift_threshold)
            drifting = true;
    }
    drift_streak_ = drifting ? drift_streak_ + 1 : 0;

    if (violation_streak_ >= options_.violation_patience) {
        out.reoptimized = true;
        out.reason = "qos-violation";
    } else if (drift_streak_ >= options_.drift_patience) {
        out.reoptimized = true;
        out.reason = "load-drift";
    }
    if (out.reoptimized) {
        reoptimize(out.reason, false);
        out.search_samples = last_result_->samples;
    }
    return out;
}

void
OnlineManager::notifyMixChange()
{
    mix_changed_ = true;
}

} // namespace core
} // namespace clite

#include "core/monitor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace clite {
namespace core {

OnlineManager::OnlineManager(platform::SimulatedServer& server,
                             CliteOptions clite_options,
                             MonitorOptions options,
                             store::ProfileStore* store)
    : server_(server), clite_(std::move(clite_options)), options_(options),
      store_(store)
{
    CLITE_CHECK(options_.violation_patience >= 1,
                "violation patience must be >= 1");
    CLITE_CHECK(options_.drift_patience >= 1, "drift patience must be >= 1");
    CLITE_CHECK(options_.load_drift_threshold > 0.0,
                "drift threshold must be > 0");
    CLITE_CHECK(options_.apply_fail_patience >= 1,
                "apply-fail patience must be >= 1");
    CLITE_CHECK(options_.apply_retries >= 0,
                "apply retries must be >= 0");
    CLITE_CHECK(options_.transient_ride_windows >= 0,
                "transient ride windows must be >= 0");
}

int
OnlineManager::effectiveViolationPatience() const
{
    if (options_.reopt_policy == ReoptPolicy::Immediate)
        return options_.violation_patience;
    return options_.violation_patience + options_.transient_ride_windows;
}

int
OnlineManager::effectiveDriftPatience() const
{
    if (options_.reopt_policy == ReoptPolicy::Immediate)
        return options_.drift_patience;
    return options_.drift_patience + options_.transient_ride_windows;
}

void
OnlineManager::recordWindowQos(
    const std::vector<platform::JobObservation>& obs, bool faulted)
{
    WindowQos w;
    w.faulted = faulted;
    for (const auto& ob : obs) {
        if (!ob.is_lc || ob.qos_target_ms <= 0.0)
            continue;
        w.worst_p95_ratio =
            std::max(w.worst_p95_ratio, ob.p95_ms / ob.qos_target_ms);
        w.worst_p99_ratio =
            std::max(w.worst_p99_ratio, ob.p99_ms / ob.qos_target_ms);
        if (ob.p95_ms > ob.qos_target_ms)
            w.violated = true;
    }
    qos_timeline_.push_back(w);
    if (!faulted) {
        ++clean_windows_;
        if (w.violated)
            ++violating_windows_;
    }
}

const ControllerResult&
OnlineManager::initialize()
{
    WarmStart warm = lookupWarmStart();
    last_result_ =
        warm.empty() ? clite_.run(server_) : clite_.runWarm(server_, warm);
    accumulateSearchStats();
    adoptResult();
    captureReference();
    checkpoint();
    return *last_result_;
}

WarmStart
OnlineManager::lookupWarmStart()
{
    warm_source_ = "cold";
    if (store_ == nullptr)
        return {};
    const store::MixSignature sig = store::MixSignature::of(server_);
    if (std::optional<store::Snapshot> snap = store_->find(sig)) {
        WarmStart warm = store::warmStartFromSnapshot(
            *snap, server_, options_.warm_start, /*exact=*/true);
        if (!warm.empty()) {
            warm_source_ = "exact";
            CLITE_LOG_INFO("warm start (exact) from mix "
                           << sig.describe());
            return warm;
        }
    }
    for (const store::Neighbor& n : store_->nearest(sig, 1)) {
        if (n.distance > options_.warm_start.max_distance)
            continue;
        WarmStart warm = store::warmStartFromSnapshot(
            n.snapshot, server_, options_.warm_start, /*exact=*/false);
        if (!warm.empty()) {
            warm_source_ = "similar";
            CLITE_LOG_INFO("warm start (similar, distance " << n.distance
                                                            << ") for mix "
                                                            << sig.describe());
            return warm;
        }
    }
    return {};
}

store::Snapshot
OnlineManager::makeCheckpoint() const
{
    CLITE_CHECK(last_result_.has_value() && incumbent_.has_value(),
                "OnlineManager::makeCheckpoint() called before "
                "initialize(); run initialize() first");
    store::ControllerPhase phase = store::ControllerPhase::Search;
    if (last_result_->best.has_value()) {
        const bool demoted = !(*incumbent_ == *last_result_->best);
        phase = demoted ? store::ControllerPhase::Degraded
                        : store::ControllerPhase::Steady;
    }
    return store::captureSnapshot(
        server_, *last_result_, *incumbent_, phase, last_window_qos_met_,
        uint64_t(windows_), size_t(options_.checkpoint_max_samples));
}

void
OnlineManager::checkpoint()
{
    if (store_ == nullptr || !options_.auto_checkpoint)
        return;
    if (!last_result_.has_value() || !incumbent_.has_value())
        return;
    store_->put(makeCheckpoint());
}

void
OnlineManager::captureReference()
{
    reference_rate_.assign(server_.jobCount(), 0.0);
    for (size_t j = 0; j < server_.jobCount(); ++j)
        if (server_.job(j).isLatencyCritical())
            reference_rate_[j] = server_.job(j).offeredQps();
    job_down_.assign(server_.jobCount(), 0);
    violation_streak_ = 0;
    drift_streak_ = 0;
    // A search just ran (or the loop reset): streaks being ridden are
    // resolved by whatever caused the reset, not counted as transients.
    violation_riding_ = false;
    drift_riding_ = false;
    apply_fail_streak_ = 0;
}

const platform::Allocation&
OnlineManager::incumbent() const
{
    CLITE_CHECK(incumbent_.has_value(),
                "OnlineManager::incumbent() called before initialize(); "
                "run initialize() first");
    return *incumbent_;
}

const ControllerResult&
OnlineManager::lastResult() const
{
    CLITE_CHECK(last_result_.has_value(),
                "OnlineManager::lastResult() called before initialize(); "
                "run initialize() first");
    return *last_result_;
}

void
OnlineManager::adoptResult()
{
    if (last_result_->best.has_value()) {
        incumbent_ = *last_result_->best;
        return;
    }
    // The search produced no usable configuration (possible under
    // heavy faults). Keep the previous incumbent when its shape still
    // matches the job set; otherwise degrade to the equal share so
    // the loop keeps running instead of aborting.
    if (incumbent_.has_value() && incumbent_->jobs() == server_.jobCount())
        return;
    platform::Allocation equal =
        platform::Allocation::equalShare(server_.jobCount(), server_.config());
    server_.apply(equal);
    for (int a = 0; a < options_.apply_retries && !server_.lastApplyOk(); ++a)
        server_.apply(equal);
    incumbent_ = equal;
    CLITE_LOG_INFO("no usable search result; incumbent degraded to "
                   "equal share");
}

void
OnlineManager::reoptimize(const std::string& reason, bool mix_changed)
{
    CLITE_LOG_INFO("re-optimizing: " << reason);
    if (mix_changed) {
        // The incumbent's shape no longer matches the job set. When
        // the change is a recognizable single add/remove, adapt the
        // incumbent to the new shape and seed the search with it —
        // the partition the search converged on is a strong warm
        // start; an unrecognizable change (several jobs at once)
        // falls back to a from-scratch search.
        std::optional<platform::Allocation> seed;
        if (incumbent_.has_value()) {
            if (server_.jobCount() == incumbent_->jobs() + 1)
                seed = incumbent_->withJobAdded();
            else if (removed_job_.has_value() &&
                     incumbent_->jobs() == server_.jobCount() + 1 &&
                     *removed_job_ < incumbent_->jobs() &&
                     server_.jobCount() >= 1)
                seed = incumbent_->withJobRemoved(*removed_job_);
        }
        // The store may already know the NEW mix (a recurring
        // co-location): its prior configurations join the adapted
        // incumbent in the bootstrap.
        WarmStart warm = lookupWarmStart();
        if (seed.has_value())
            last_result_ = warm.empty()
                               ? clite_.reoptimize(server_, *seed)
                               : clite_.reoptimizeWarm(server_, *seed, warm);
        else
            last_result_ = warm.empty() ? clite_.run(server_)
                                        : clite_.runWarm(server_, warm);
    } else {
        // Violation/drift re-optimization stays warm-free beyond the
        // incumbent seed: the stored prior described an operating
        // point that just proved wrong, and trusting it here could
        // skip the infeasibility probes exactly when they matter.
        last_result_ = clite_.reoptimize(server_, *incumbent_);
    }
    accumulateSearchStats();
    adoptResult();
    captureReference();
    mix_changed_ = false;
    removed_job_.reset();
    ++reoptimizations_;
}

void
OnlineManager::accumulateSearchStats()
{
    refits_ += last_result_->refits;
    probe_evals_ += last_result_->probe_evals;
    warm_probe_hits_ += last_result_->warm_probe_hits;
    coarse_windows_ += last_result_->coarse_windows;
}

bool
OnlineManager::watchdog(Tick& out)
{
    if (!incumbent_.has_value() ||
        incumbent_->jobs() != server_.jobCount())
        return false;

    // Compare only live columns: a dead knob keeps its last programmed
    // value, which the incumbent cannot (and need not) change.
    std::vector<char> is_dead(incumbent_->resources(), 0);
    for (size_t r : server_.deadResources())
        is_dead[r] = 1;
    bool match = true;
    {
        const platform::Allocation& cur = server_.currentAllocation();
        for (size_t j = 0; j < cur.jobs() && match; ++j)
            for (size_t r = 0; r < cur.resources(); ++r)
                if (!is_dead[r] && cur.get(j, r) != incumbent_->get(j, r)) {
                    match = false;
                    break;
                }
    }
    if (match) {
        apply_fail_streak_ = 0;
        return true;
    }

    // The incumbent is not programmed (a transient apply failure left
    // the server on a stale partition): re-apply with bounded retries.
    server_.apply(*incumbent_);
    for (int a = 0; a < options_.apply_retries && !server_.lastApplyOk(); ++a)
        server_.apply(*incumbent_);
    if (server_.lastApplyOk()) {
        apply_fail_streak_ = 0;
        return true;
    }

    ++apply_fail_streak_;
    if (apply_fail_streak_ < options_.apply_fail_patience)
        return false;

    // Repeated failure to program the incumbent: degrade gracefully to
    // the last configuration known to meet QoS, or the equal share
    // when none is known yet.
    platform::Allocation fallback =
        (last_known_good_.has_value() &&
         last_known_good_->jobs() == server_.jobCount())
            ? *last_known_good_
            : platform::Allocation::equalShare(server_.jobCount(),
                                               server_.config());
    server_.apply(fallback);
    for (int a = 0; a < options_.apply_retries && !server_.lastApplyOk(); ++a)
        server_.apply(fallback);
    incumbent_ = std::move(fallback);
    apply_fail_streak_ = 0;
    ++fallbacks_;
    out.fallback = true;
    CLITE_LOG_INFO("watchdog: incumbent unprogrammable, fell back to "
                   << (last_known_good_.has_value() ? "last known-good"
                                                    : "equal share"));
    return false;
}

OnlineManager::Tick
OnlineManager::tick()
{
    CLITE_CHECK(last_result_.has_value(),
                "OnlineManager::tick() called before initialize(); "
                "run initialize() first");
    ++windows_;

    Tick out;

    if (mix_changed_) {
        out.reoptimized = true;
        out.reason = "mix-change";
        reoptimize(out.reason, true);
        out.search_samples = last_result_->samples;
    }

    const bool faults = server_.faultsEnabled();
    bool incumbent_verified = !faults;
    if (!out.reoptimized && faults)
        incumbent_verified = watchdog(out);

    // Mid-window early-abort (budgeted controllers only): peek at the
    // partial counters and cancel a window whose tail already proves
    // a clear QoS violation instead of paying for the rest of it. The
    // abort only fires on clean telemetry — a dropped, stale, or
    // crashed partial falls through to the full window so the fault
    // quarantine (and crash bookkeeping) below handles it. An aborted
    // window advances the violation streak like any violating window,
    // but NEVER updates last_window_qos_met_: a partial reading must
    // not poison the checkpointed incumbent QoS state.
    const bo::BudgetOptions& bopts = clite_.options().budget;
    if (!out.reoptimized && bopts.enabled() && bopts.early_abort) {
        std::vector<platform::JobObservation> partial =
            server_.observePartialWindow(bopts.abort_check_fraction);
        bool clean = true;
        for (const auto& ob : partial)
            if (!ob.valid || ob.stale || ob.crashed)
                clean = false;
        std::vector<bo::PartialTailSample> tails;
        if (clean) {
            tails.reserve(partial.size());
            for (const auto& ob : partial) {
                bo::PartialTailSample t;
                t.p95_ms = ob.p95_ms;
                t.target_ms = ob.qos_target_ms;
                t.is_lc = ob.is_lc;
                t.valid = ob.valid;
                t.fraction = ob.window_fraction;
                tails.push_back(t);
            }
        }
        if (clean && bo::BudgetPolicy::shouldAbort(tails, bopts)) {
            ScoreBreakdown psb = scoreObservations(partial);
            out.aborted = true;
            out.all_qos_met = false;
            out.score = psb.score;
            recordWindowQos(partial, /*faulted=*/false);
            ++aborted_windows_;
            ++violation_streak_;
            if (violation_streak_ >= effectiveViolationPatience()) {
                out.reoptimized = true;
                out.reason = "qos-violation";
                if (options_.reopt_policy == ReoptPolicy::RideTransients)
                    ++sustained_shifts_;
                reoptimize(out.reason, false);
                out.search_samples = last_result_->samples;
            } else if (options_.reopt_policy ==
                           ReoptPolicy::RideTransients &&
                       violation_streak_ >= options_.violation_patience) {
                violation_riding_ = true;
            }
            checkpoint();
            return out;
        }
    }

    std::vector<platform::JobObservation> obs = server_.observe();
    ScoreBreakdown sb = scoreObservations(obs);
    out.all_qos_met = sb.all_qos_met;
    out.score = sb.score;

    if (faults) {
        // Crash bookkeeping: a restart re-captures the reference rates
        // (the restarted job ramps back to its offered load, which
        // must not read as drift of the incumbent's operating point).
        if (job_down_.size() != obs.size())
            job_down_.assign(obs.size(), 0);
        bool restarted = false;
        for (size_t j = 0; j < obs.size(); ++j) {
            if (obs[j].crashed) {
                job_down_[j] = 1;
            } else if (job_down_[j]) {
                job_down_[j] = 0;
                restarted = true;
            }
        }
        if (restarted && !out.reoptimized) {
            CLITE_LOG_INFO("job restart detected; re-capturing reference "
                           "rates");
            captureReference();
        }
    }

    // Percentile-over-time bookkeeping: every observed window lands in
    // the timeline; quarantined windows are flagged so the violating
    // fraction skips them.
    bool fault_window = false;
    if (faults) {
        for (const auto& ob : obs)
            if (!ob.valid || ob.stale || ob.crashed)
                fault_window = true;
        for (char down : job_down_)
            if (down)
                fault_window = true;
    }
    recordWindowQos(obs, fault_window);

    if (out.reoptimized) {
        last_window_qos_met_ = sb.all_qos_met;
        checkpoint();
        return out;
    }

    if (faults) {
        // Quarantine faulted windows: lost/stale telemetry or a down
        // job makes this window's QoS/score describe the fault, not
        // the partition. No streak advances — a glitch must not
        // trigger a spurious re-optimization, and no partition can
        // fix a dead process.
        if (fault_window) {
            // Quarantined telemetry describes the fault, not the
            // partition — last_window_qos_met_ keeps its pre-fault
            // value so a glitch cannot poison the checkpoint.
            out.faulted = true;
            ++faulted_windows_;
            checkpoint();
            return out;
        }
        // Only a window whose incumbent was verified programmed may
        // record a known-good configuration — a QoS-met window running
        // some stale partition says nothing about the incumbent.
        if (incumbent_verified && sb.all_qos_met && incumbent_.has_value())
            last_known_good_ = *incumbent_;
    }

    // QoS violation detection. A streak that was being ridden (it had
    // already reached the Immediate threshold) and decays here was a
    // transient the RideTransients policy absorbed.
    if (sb.all_qos_met) {
        if (violation_riding_) {
            ++transients_ridden_;
            violation_riding_ = false;
        }
        violation_streak_ = 0;
    } else {
        ++violation_streak_;
    }

    // Load drift: compare each LC job's observed completion rate to
    // the rate the incumbent was optimized for. (Completions track
    // offered load while the job is unsaturated; when it IS saturated
    // the QoS check fires first.)
    bool drifting = false;
    for (size_t j = 0; j < obs.size(); ++j) {
        if (!obs[j].is_lc || reference_rate_[j] <= 0.0)
            continue;
        double rel = std::fabs(obs[j].throughput - reference_rate_[j]) /
                     reference_rate_[j];
        if (rel > options_.load_drift_threshold)
            drifting = true;
    }
    if (drifting) {
        ++drift_streak_;
    } else {
        if (drift_riding_) {
            ++transients_ridden_;
            drift_riding_ = false;
        }
        drift_streak_ = 0;
    }

    if (violation_streak_ >= effectiveViolationPatience()) {
        out.reoptimized = true;
        out.reason = "qos-violation";
    } else if (drift_streak_ >= effectiveDriftPatience()) {
        out.reoptimized = true;
        out.reason = "load-drift";
    } else if (options_.reopt_policy == ReoptPolicy::RideTransients) {
        // Streaks past the Immediate threshold but inside the ride
        // window: keep riding the incumbent.
        if (violation_streak_ >= options_.violation_patience)
            violation_riding_ = true;
        if (drift_streak_ >= options_.drift_patience)
            drift_riding_ = true;
    }
    last_window_qos_met_ = sb.all_qos_met;
    if (out.reoptimized) {
        if (options_.reopt_policy == ReoptPolicy::RideTransients)
            ++sustained_shifts_;
        reoptimize(out.reason, false);
        out.search_samples = last_result_->samples;
    }
    checkpoint();
    return out;
}

void
OnlineManager::notifyMixChange()
{
    mix_changed_ = true;
    removed_job_.reset();
}

void
OnlineManager::notifyJobRemoved(size_t server_index)
{
    mix_changed_ = true;
    // Only a single removal since the last search can be seeded; a
    // second structural change invalidates the remembered index.
    removed_job_ = removed_job_.has_value() ? std::optional<size_t>{}
                                            : std::optional<size_t>{
                                                  server_index};
}

} // namespace core
} // namespace clite

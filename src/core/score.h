/**
 * @file
 * CLITE's two-mode score function (paper Eq. 3).
 *
 * The score maps a full-system observation to [0, 1]:
 *
 *  - Mode 1 (some LC job misses QoS): half the mean of the per-LC-job
 *    QoS ratios min(1, target/latency). Always <= 0.5, and smooth in
 *    how far jobs are from their targets, so BO gets a gradient toward
 *    feasibility instead of a flat 0 plateau (a multiplicative
 *    aggregate would collapse to ~0 once any job saturates).
 *  - Mode 2 (every LC job meets QoS): 0.5 plus half the mean of the
 *    BG jobs' normalized performances Colo-Perf/Iso-Perf — Sec. 5.2:
 *    "CLITE's objective function strives to maximize the mean
 *    performance of all the co-located BG jobs". Always in (0.5, 1].
 *
 * When no BG job is co-located, mode 2 substitutes the LC jobs'
 * normalized performances (N_BG -> N_LC, as the paper specifies), so
 * CLITE keeps improving LC latency past the targets.
 */

#ifndef CLITE_CORE_SCORE_H
#define CLITE_CORE_SCORE_H

#include <vector>

#include "platform/server.h"

namespace clite {
namespace core {

/** Decomposed score, useful for logging and tests. */
struct ScoreBreakdown
{
    double score = 0.0;      ///< Final value in [0, 1].
    bool all_qos_met = false;///< Mode selector.
    double qos_component = 0.0;  ///< Mean of capped QoS ratios.
    double perf_component = 0.0; ///< Mean of normalized performances.
    int lc_jobs = 0;         ///< Number of LC jobs observed.
    int bg_jobs = 0;         ///< Number of BG jobs observed.
};

/**
 * Evaluate Eq. 3 on one observation vector.
 *
 * @param obs Per-job observations from SimulatedServer::observe().
 * @return Breakdown with score in [0, 1].
 * @throws clite::Error on an empty observation vector.
 */
ScoreBreakdown scoreObservations(
    const std::vector<platform::JobObservation>& obs);

/** Convenience: just the scalar score. */
double score(const std::vector<platform::JobObservation>& obs);

} // namespace core
} // namespace clite

#endif // CLITE_CORE_SCORE_H

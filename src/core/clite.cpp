#include "core/clite.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "bo/acquisition.h"
#include "common/error.h"
#include "common/log.h"
#include "core/cadence.h"
#include "gp/gaussian_process.h"
#include "opt/projected_gradient.h"
#include "opt/simplex.h"
#include "stats/sampling.h"
#include "stats/summary.h"

namespace clite {
namespace core {

namespace {

/**
 * Round a continuous normalized configuration to a valid Allocation,
 * optionally pinning one job's allocation (dropout-copy) and freezing
 * dead-knob resource columns at their actually-programmed partition.
 *
 * @param flat Normalized job-major coordinates.
 * @param fixed_job Job whose allocation is pinned (-1 for none).
 * @param fixed_units Pinned units per resource (when fixed_job >= 0).
 * @param dead Per-resource dead-knob mask (empty for none).
 * @param frozen Actually-programmed allocation supplying dead columns.
 */
platform::Allocation
roundWithPinning(const std::vector<double>& flat, size_t njobs,
                 const platform::ServerConfig& config, int fixed_job,
                 const std::vector<int>& fixed_units,
                 const std::vector<char>& dead = {},
                 const platform::Allocation* frozen = nullptr)
{
    platform::Allocation alloc(njobs, config);
    const size_t nres = config.resourceCount();
    for (size_t r = 0; r < nres; ++r) {
        if (r < dead.size() && dead[r] && frozen != nullptr) {
            for (size_t j = 0; j < njobs; ++j)
                alloc.set(j, r, frozen->get(j, r));
            continue;
        }
        int units = config.resource(r).units;
        std::vector<double> col(njobs);
        std::vector<int> lo(njobs, 1);
        std::vector<int> hi(njobs, units - int(njobs) + 1);
        for (size_t j = 0; j < njobs; ++j)
            col[j] = flat[j * nres + r] * double(units);
        if (fixed_job >= 0) {
            lo[size_t(fixed_job)] = fixed_units[r];
            hi[size_t(fixed_job)] = fixed_units[r];
            col[size_t(fixed_job)] = double(fixed_units[r]);
        }
        std::vector<int> rounded =
            opt::roundToIntegerComposition(col, units, lo, hi);
        for (size_t j = 0; j < njobs; ++j)
            alloc.set(j, r, rounded[j]);
    }
    alloc.validate();
    return alloc;
}

/** Uniformly random valid allocation. */
platform::Allocation
randomAllocation(size_t njobs, const platform::ServerConfig& config,
                 Rng& rng)
{
    platform::Allocation alloc(njobs, config);
    for (size_t r = 0; r < config.resourceCount(); ++r) {
        std::vector<int> parts = stats::sampleComposition(
            config.resource(r).units, int(njobs), rng, 1);
        for (size_t j = 0; j < njobs; ++j)
            alloc.set(j, r, parts[j]);
    }
    alloc.validate();
    return alloc;
}

/**
 * Per-job "how well is it doing" metric for dropout selection: QoS
 * headroom for LC jobs (capped at 1 once met), normalized throughput
 * for BG jobs.
 */
double
jobGoodness(const platform::JobObservation& ob)
{
    if (ob.is_lc)
        return std::min(1.0, ob.qosRatio());
    return ob.perfNorm();
}

} // namespace

CliteController::CliteController(CliteOptions options)
    : options_(std::move(options))
{
    CLITE_CHECK(options_.max_iterations >= 0, "max_iterations must be >= 0");
    CLITE_CHECK(options_.termination_threshold >= 0.0,
                "termination threshold must be >= 0");
    CLITE_CHECK(options_.acquisition_starts >= 1,
                "need at least one acquisition start");
    CLITE_CHECK(options_.dropout_random_prob >= 0.0 &&
                    options_.dropout_random_prob <= 1.0,
                "dropout_random_prob must be in [0,1]");
    CLITE_CHECK(options_.apply_retries >= 0,
                "apply_retries must be >= 0");
    CLITE_CHECK(options_.retry_backoff_ms >= 0.0,
                "retry_backoff_ms must be >= 0");
}

ControllerResult
CliteController::run(platform::SimulatedServer& server)
{
    return search(server, nullptr);
}

ControllerResult
CliteController::runWarm(platform::SimulatedServer& server,
                         const WarmStart& warm)
{
    return search(server, nullptr, &warm);
}

ControllerResult
CliteController::reoptimize(platform::SimulatedServer& server,
                            const platform::Allocation& incumbent)
{
    return search(server, &incumbent);
}

ControllerResult
CliteController::reoptimizeWarm(platform::SimulatedServer& server,
                                const platform::Allocation& incumbent,
                                const WarmStart& warm)
{
    return search(server, &incumbent, &warm);
}

ControllerResult
CliteController::search(platform::SimulatedServer& server,
                        const platform::Allocation* incumbent,
                        const WarmStart* warm)
{
    const platform::ServerConfig& config = server.config();
    const size_t njobs = server.jobCount();
    const size_t nres = config.resourceCount();
    const size_t dim = njobs * nres;

    Rng rng(options_.seed);
    std::vector<SampleRecord> trace;
    std::set<std::string> seen;

    // Fault tolerance engages only when the server can actually
    // inject faults; on a fault-free server every path below is
    // bit-identical to the non-resilient search.
    const bool resilient = options_.resilient && server.faultsEnabled();

    // Budget-bounded search (bo/budget.h): inert unless a finite
    // positive budget is configured, so the unbudgeted search stays
    // bit-identical to the EI-threshold baseline. Early-abort engages
    // only after the bootstrap — the per-job maximum-allocation
    // extrema double as the infeasibility test, and an aborted
    // (quarantined) extremum could not prove anything.
    bo::BudgetPolicy budget(options_.budget);
    const double window_s = options_.budget.window_seconds;
    const bool budgeted = budget.active();
    bool budget_stopped = false;
    bool allow_abort = false;

    // Refit/coarse observability, surfaced as ControllerResult
    // counters at every exit path.
    uint64_t stat_refits = 0;
    uint64_t stat_probe_evals = 0;
    uint64_t stat_warm_hits = 0;
    uint64_t stat_coarse_windows = 0;

    // Coarse search windows (docs/MODEL.md): with a configured search
    // event budget and a model that honors it, every probe window of
    // this search — bootstrap sweep, BO iteration, polish move — is
    // measured under the budget. The guard restores fine mode on
    // every exit path, and the validation phase releases it before
    // re-measuring candidates, so no window whose score the caller
    // keeps (validated candidates, monitoring ticks, checkpoints) is
    // ever coarse.
    struct FineModeGuard
    {
        platform::SimulatedServer& server;
        bool active;
        void release()
        {
            if (active) {
                server.setMeasurementEventBudget(0);
                active = false;
            }
        }
        ~FineModeGuard() { release(); }
    } coarse_guard{server,
                   options_.search_event_budget > 0 &&
                       server.setMeasurementEventBudget(
                           options_.search_event_budget)};

    // Budgeted evaluation with mid-window early-abort: apply, peek at
    // the partial counters a fraction into the window, and cancel the
    // window — charging exactly the elapsed cost — when the partial
    // tail already proves it clearly infeasible. Aborted samples are
    // quarantined like any fault: never fed to the GP, never eligible
    // to win.
    auto evaluate_budgeted =
        [&](const platform::Allocation& alloc) -> SampleRecord {
        server.apply(alloc);
        int retries = 0;
        double backoff_ms = 0.0;
        while (resilient && !server.lastApplyOk() &&
               retries < options_.apply_retries) {
            backoff_ms += options_.retry_backoff_ms * double(1 << retries);
            ++retries;
            server.apply(alloc);
        }
        if (server.lastApplyOk() && options_.budget.early_abort &&
            allow_abort) {
            const double f = options_.budget.abort_check_fraction;
            std::vector<platform::JobObservation> partial =
                server.observePartialWindow(f);
            std::vector<bo::PartialTailSample> tails;
            tails.reserve(partial.size());
            for (const platform::JobObservation& ob : partial) {
                bo::PartialTailSample t;
                t.p95_ms = ob.p95_ms;
                t.target_ms = ob.qos_target_ms;
                t.is_lc = ob.is_lc;
                t.valid = ob.valid && !ob.stale;
                t.fraction = ob.window_fraction;
                tails.push_back(t);
            }
            if (bo::BudgetPolicy::shouldAbort(tails, options_.budget)) {
                ScoreBreakdown sb = scoreObservations(partial);
                SampleRecord rec(alloc, sb.score, false,
                                 std::move(partial));
                rec.status = SampleStatus::Aborted;
                rec.apply_retries = retries;
                rec.backoff_ms = backoff_ms;
                rec.cost_seconds = f * window_s;
                budget.chargeAborted(f);
                return rec;
            }
        }
        SampleRecord rec =
            recordFromObservations(server, alloc, server.observe());
        rec.apply_retries = retries;
        rec.backoff_ms = backoff_ms;
        rec.cost_seconds = window_s;
        budget.chargeWindow(rec.usable() && rec.all_qos_met);
        return rec;
    };

    auto evaluate_raw = [&](const platform::Allocation& alloc) {
        if (coarse_guard.active)
            ++stat_coarse_windows;
        if (budgeted)
            return evaluate_budgeted(alloc);
        SampleRecord rec =
            resilient ? evaluateSampleResilient(server, alloc,
                                                options_.apply_retries,
                                                options_.retry_backoff_ms)
                      : evaluateSample(server, alloc);
        // Every transient-apply retry re-ran the full window.
        rec.cost_seconds = window_s * double(1 + rec.apply_retries);
        return rec;
    };
    auto evaluate_unique = [&](const platform::Allocation& alloc) -> bool {
        if (!seen.insert(alloc.key()).second)
            return false;
        trace.push_back(evaluate_raw(alloc));
        return true;
    };
    // Indices of quarantine-free samples — the only ones that may
    // win the search (or serve as the incumbent).
    auto usable_indices = [&]() {
        std::vector<size_t> idx;
        idx.reserve(trace.size());
        for (size_t i = 0; i < trace.size(); ++i)
            if (trace[i].usable())
                idx.push_back(i);
        return idx;
    };
    // Surrogate training set: usable samples plus early-aborted ones.
    // An aborted window's partial reading is real telemetry that
    // PROVES a QoS violation (mode-1 score), so feeding it keeps the
    // acquisition away from the violating region instead of paying
    // for the same abort again; faulted telemetry stays excluded.
    // Unbudgeted traces contain no Aborted records, so this set is
    // identical to usable_indices() there.
    auto surrogate_indices = [&]() {
        std::vector<size_t> idx;
        idx.reserve(trace.size());
        for (size_t i = 0; i < trace.size(); ++i)
            if (trace[i].usable() ||
                trace[i].status == SampleStatus::Aborted)
                idx.push_back(i);
        return idx;
    };
    // Stamp the observability counters onto a finished result.
    auto finish = [&](ControllerResult r) {
        r.refits = stat_refits;
        r.probe_evals = stat_probe_evals;
        r.warm_probe_hits = stat_warm_hits;
        r.coarse_windows = stat_coarse_windows;
        return r;
    };

    // Warm-start priors must match the search space exactly; the
    // store-side conversion (store/warm_start.h) already filters by
    // signature, so a mismatch here is a programming error.
    if (warm != nullptr) {
        auto check_shape = [&](const platform::Allocation& a) {
            CLITE_CHECK(a.jobs() == njobs && a.resources() == nres,
                        "warm-start configuration shape "
                            << a.jobs() << "x" << a.resources()
                            << " does not match the server's " << njobs
                            << "x" << nres);
        };
        if (warm->incumbent.has_value())
            check_shape(*warm->incumbent);
        for (const platform::Allocation& a : warm->configs)
            check_shape(a);
    }

    // ---- Bootstrap (Sec. 4, "Selecting Bootstrapping Configuration
    // Samples"): equal division + per-job maximum-allocation extrema,
    // preceded by any warm-start priors (the prior run's incumbent is
    // the strongest single guess, then its best configurations). When
    // the prior proved this exact mix feasible, the extrema — whose
    // only purpose is the infeasibility test — are skipped, which is
    // where warm starts save most of their observation windows.
    std::vector<size_t> extremum_sample_of_job(njobs, size_t(-1));
    if (options_.informed_bootstrap) {
        if (warm != nullptr && warm->incumbent.has_value())
            evaluate_unique(*warm->incumbent);
        if (incumbent != nullptr)
            evaluate_unique(*incumbent);
        if (warm != nullptr)
            for (const platform::Allocation& a : warm->configs)
                evaluate_unique(a);
        evaluate_unique(platform::Allocation::equalShare(njobs, config));
        const bool skip_extrema = warm != nullptr && warm->trusted_feasible;
        for (size_t j = 0; j < njobs && !skip_extrema; ++j) {
            platform::Allocation ext =
                platform::Allocation::maxFor(j, njobs, config);
            if (evaluate_unique(ext))
                extremum_sample_of_job[j] = trace.size() - 1;
        }
    } else {
        // Ablation: random bootstrap of the same size.
        size_t want = njobs + 1 + (incumbent != nullptr ? 1 : 0);
        int guard = 0;
        while (trace.size() < want && guard++ < 200)
            evaluate_unique(randomAllocation(njobs, config, rng));
    }

    // Under faults the whole bootstrap can come back quarantined
    // (e.g. an apply-failure burst): re-measure the equal share a few
    // times — without it the surrogate has nothing to stand on.
    if (resilient && usable_indices().empty()) {
        for (int attempt = 0; attempt < 3; ++attempt) {
            trace.push_back(evaluate_raw(
                platform::Allocation::equalShare(njobs, config)));
            if (trace.back().usable())
                break;
        }
    }

    // ---- Early infeasibility detection: an LC job that misses QoS
    // even with the maximum possible allocation cannot be co-located
    // with this job set (paper: schedule it elsewhere, no BO cycles).
    // Only a clean (usable) extremum observation may prove it — a
    // faulted window must not condemn the whole co-location.
    bool infeasible = false;
    std::vector<size_t> infeasible_jobs;
    for (size_t j = 0; j < njobs && options_.informed_bootstrap; ++j) {
        size_t s = extremum_sample_of_job[j];
        if (s == size_t(-1) || !server.job(j).isLatencyCritical())
            continue;
        if (!trace[s].usable())
            continue;
        const platform::JobObservation& ob = trace[s].observations[j];
        if (!ob.qosMet()) {
            CLITE_LOG_INFO("job " << ob.job_name
                                  << " misses QoS even at max allocation ("
                                  << ob.p95_ms << "ms > " << ob.qos_target_ms
                                  << "ms); co-location infeasible");
            infeasible = true;
            infeasible_jobs.push_back(j);
        }
    }
    if (infeasible || njobs == 1 || options_.max_iterations == 0 ||
        usable_indices().empty())
        return finish(finalizeResult(server, std::move(trace), infeasible,
                                     std::move(infeasible_jobs)));

    // The bootstrap (and its infeasibility evidence) is complete;
    // probe windows from here on may be cancelled mid-measurement.
    allow_abort = true;

    // ---- BO loop (Algorithm 1 specialized to the partition lattice).
    std::unique_ptr<gp::Kernel> kernel =
        gp::makeKernel(options_.kernel, dim, 0.3);
    kernel->setIsotropic(!options_.ard);
    gp::GaussianProcess surrogate(std::move(kernel), 1e-4);
    std::unique_ptr<bo::Acquisition> acquisition =
        bo::makeAcquisition(options_.acquisition, options_.ei_zeta);

    // The EI-drop termination threshold scales with the number of
    // co-located jobs (the EI curve drops more slowly in bigger spaces).
    const double threshold =
        options_.termination_threshold * std::max(1.0, double(njobs) / 3.0);
    int below_threshold_streak = 0;

    // Adaptive refit cadence (core/cadence.h): the fixed gp_fit_every
    // schedule below the subset threshold — bit-identical to the
    // historical behaviour — and a history-stretched period above it,
    // pulled forward when an observation lands outside the
    // surrogate's own confidence band. The stretch point is the same
    // threshold at which the probe tier switches to subset LML, so
    // the two large-history mechanisms engage together.
    const size_t stretch_threshold = gp::GpFitOptions{}.subset_threshold;
    RefitCadence cadence(std::max(1, options_.gp_fit_every),
                         stretch_threshold);
    bool surprise_pending = false;

    // Dead-knob state: a resource whose isolation tool permanently
    // fails collapses to a frozen column — the search continues over
    // the remaining dimensions instead of aborting.
    std::vector<char> dead(nres, 0);
    size_t dead_count = 0;

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
        // Budget gate: a probe costs up to one full window; starting
        // one the residual budget cannot pay for would overrun it.
        if (budgeted && !budget.canAffordWindow()) {
            CLITE_LOG_DEBUG("budget exhausted at iteration "
                            << iter << ": " << budget.charged() << "s of "
                            << budget.budget() << "s charged");
            budget_stopped = true;
            break;
        }
        if (resilient) {
            bool grew = false;
            for (size_t r : server.deadResources())
                if (!dead[r]) {
                    dead[r] = 1;
                    ++dead_count;
                    grew = true;
                    CLITE_LOG_INFO(
                        "resource knob "
                        << platform::resourceName(
                               config.resource(r).kind)
                        << " died; collapsing dimension");
                }
            if (grew && dead_count < nres) {
                // Re-seed the collapsed search: the best usable
                // configuration with dead columns snapped to what is
                // actually programmed.
                std::vector<size_t> usable = usable_indices();
                if (!usable.empty()) {
                    size_t b = usable[0];
                    for (size_t i : usable)
                        if (trace[i].score > trace[b].score)
                            b = i;
                    platform::Allocation reseed = trace[b].alloc;
                    const platform::Allocation& frozen =
                        server.currentAllocation();
                    for (size_t r = 0; r < nres; ++r)
                        if (dead[r])
                            for (size_t j = 0; j < njobs; ++j)
                                reseed.set(j, r, frozen.get(j, r));
                    evaluate_unique(reseed);
                }
            }
            if (dead_count >= nres)
                break; // nothing left to program
        }

        // Update the surrogate from the usable samples only —
        // quarantined observations describe faults, not the score
        // surface. fitIncremental extends the Cholesky factor in
        // O(n²) while the usable list only grows at the tail (the
        // common case); a quarantined sample changes the filtered
        // prefix and falls back to a full refit, so a faulted
        // observation can never linger in the factor.
        std::vector<size_t> usable = usable_indices();
        if (usable.empty())
            break;
        std::vector<size_t> train = surrogate_indices();
        std::vector<linalg::Vector> xs;
        std::vector<double> ys;
        xs.reserve(train.size());
        for (size_t i : train) {
            xs.push_back(trace[i].alloc.flattenNormalized());
            ys.push_back(trace[i].score);
        }
        surrogate.fitIncremental(xs, ys);
        if (cadence.step(train.size(), surprise_pending)) {
            surprise_pending = false;
            gp::GpFitOptions fo;
            fo.restarts = options_.gp_restarts;
            fo.max_iters = 50;
            surrogate.optimizeHyperparameters(rng, fo);
            const gp::GpFitStats& fs = surrogate.lastFitStats();
            ++stat_refits;
            stat_probe_evals += fs.probe_evals;
            if (fs.warm_hit)
                ++stat_warm_hits;
        }

        size_t best_idx = usable[0];
        for (size_t i : usable)
            if (trace[i].score > trace[best_idx].score)
                best_idx = i;
        const double incumbent_score = trace[best_idx].score;

        // ---- Dropout-copy: pin the best-performing job — the one
        // that has met or is closest to meeting its QoS in the best
        // configuration so far — at its allocation in that incumbent,
        // and search over the remaining jobs. Once several jobs meet
        // QoS their goodness ties at 1, so ties break toward the job
        // holding the FEWEST resources: it performs best on least, so
        // freezing it frees the most exploration for the others. With
        // a small probability a random job is pinned instead (the
        // residual stochasticity behind Fig. 11's small variability).
        int fixed_job = -1;
        std::vector<int> fixed_units(nres, 1);
        if (options_.dropout && njobs >= 3) {
            const auto& incumbent_rec = trace[best_idx];
            size_t chosen;
            if (rng.bernoulli(options_.dropout_random_prob)) {
                chosen = size_t(rng.uniformInt(0, int64_t(njobs) - 1));
            } else {
                chosen = 0;
                double best_g = -1.0;
                double best_share = 1e100;
                for (size_t j = 0; j < njobs; ++j) {
                    double g =
                        jobGoodness(incumbent_rec.observations[j]);
                    double share = 0.0;
                    for (size_t r = 0; r < nres; ++r)
                        share += double(incumbent_rec.alloc.get(j, r)) /
                                 double(config.resource(r).units);
                    if (g > best_g + 1e-9 ||
                        (g > best_g - 1e-9 && share < best_share)) {
                        best_g = g;
                        best_share = share;
                        chosen = j;
                    }
                }
            }
            // Pinning must leave every other job one unit of everything.
            bool pinnable = true;
            for (size_t r = 0; r < nres; ++r) {
                int pinned = incumbent_rec.alloc.get(chosen, r);
                if (config.resource(r).units - pinned < int(njobs) - 1)
                    pinnable = false;
            }
            if (pinnable) {
                fixed_job = int(chosen);
                for (size_t r = 0; r < nres; ++r)
                    fixed_units[r] = incumbent_rec.alloc.get(chosen, r);
            }
        }

        // ---- Constrained acquisition maximization (Eq. 4–6) on the
        // continuous relaxation in normalized coordinates.
        std::vector<opt::SimplexBlock> blocks;
        std::vector<size_t> free_jobs;
        for (size_t j = 0; j < njobs; ++j)
            if (int(j) != fixed_job)
                free_jobs.push_back(j);
        for (size_t r = 0; r < nres; ++r) {
            if (dead[r])
                continue; // collapsed dimension: no block, held fixed
            int units = config.resource(r).units;
            int free_total =
                units - (fixed_job >= 0 ? fixed_units[r] : 0);
            opt::SimplexBlock blk;
            blk.total = double(free_total) / double(units);
            for (size_t j : free_jobs) {
                blk.indices.push_back(j * nres + r);
                blk.lo.push_back(1.0 / double(units));
                blk.hi.push_back(
                    double(free_total - int(free_jobs.size()) + 1) /
                    double(units));
            }
            blocks.push_back(std::move(blk));
        }

        opt::PgOptions pg;
        pg.max_iters = 40;
        pg.fd_step = 0.02;
        opt::ProjectedGradientOptimizer optimizer(blocks, dim, pg);

        // Cost-aware acquisition (budgeted runs only): feasibility-
        // weighted EI per expected window cost, EI·(1−p)/E[cost]. The
        // violation probability at a candidate is the posterior mass
        // below the mode-1/mode-2 score boundary (0.5): probable
        // violators are cheap (their window aborts early) but an
        // aborted sample can never win, so their expected useful
        // improvement carries the (1−p) weight — without it the
        // normalization would chase the violating region precisely
        // because probing it is cheap.
        const bool normalize_cost =
            budgeted && options_.budget.cost_normalized;
        auto violate_prob = [](double mean, double variance) {
            const double sigma = std::sqrt(std::max(0.0, variance));
            if (sigma <= 0.0)
                return mean < 0.5 ? 1.0 : 0.0;
            return 0.5 *
                   std::erfc((mean - 0.5) / (sigma * std::sqrt(2.0)));
        };
        auto acq_objective = [&](const std::vector<double>& x) {
            double v = acquisition->evaluate(surrogate, x, incumbent_score);
            if (!normalize_cost)
                return v;
            gp::Prediction p = surrogate.predict(x);
            return budget.costAwareAcquisition(
                v, violate_prob(p.mean, p.variance));
        };
        // The 2d finite-difference probe points of each PG gradient go
        // through the batched posterior in one predictBatch call;
        // evaluateBatch is bit-identical to evaluate per point, so the
        // controller trace is unchanged.
        auto acq_batch = [&](const std::vector<std::vector<double>>& pts,
                             double* out) {
            acquisition->evaluateBatch(surrogate, pts, 0, pts.size(),
                                       incumbent_score, out);
            if (!normalize_cost)
                return;
            for (size_t i = 0; i < pts.size(); ++i) {
                gp::Prediction p = surrogate.predict(pts[i]);
                out[i] = budget.costAwareAcquisition(
                    out[i], violate_prob(p.mean, p.variance));
            }
        };

        // Dead columns are held at the actually-programmed partition
        // in every start (no block covers them, so the optimizer
        // leaves them untouched).
        auto pin_dead = [&](std::vector<double>& x) {
            if (dead_count == 0)
                return;
            const platform::Allocation& frozen =
                server.currentAllocation();
            for (size_t r = 0; r < nres; ++r)
                if (dead[r])
                    for (size_t j = 0; j < njobs; ++j)
                        x[j * nres + r] =
                            double(frozen.get(j, r)) /
                            double(config.resource(r).units);
        };

        // Multi-start: the incumbent plus random feasible points.
        std::vector<std::vector<double>> starts;
        {
            std::vector<double> s0 =
                trace[best_idx].alloc.flattenNormalized();
            if (fixed_job >= 0)
                for (size_t r = 0; r < nres; ++r)
                    s0[size_t(fixed_job) * nres + r] =
                        double(fixed_units[r]) /
                        double(config.resource(r).units);
            pin_dead(s0);
            starts.push_back(std::move(s0));
        }
        for (int s = 1; s < options_.acquisition_starts; ++s) {
            std::vector<double> x(dim, 0.0);
            for (size_t r = 0; r < nres; ++r) {
                int units = config.resource(r).units;
                int free_total =
                    units - (fixed_job >= 0 ? fixed_units[r] : 0);
                std::vector<int> parts = stats::sampleComposition(
                    free_total, int(free_jobs.size()), rng, 1);
                for (size_t k = 0; k < free_jobs.size(); ++k)
                    x[free_jobs[k] * nres + r] =
                        double(parts[k]) / double(units);
                if (fixed_job >= 0)
                    x[size_t(fixed_job) * nres + r] =
                        double(fixed_units[r]) / double(units);
            }
            pin_dead(x);
            starts.push_back(std::move(x));
        }

        opt::PgResult acq =
            optimizer.maximizeMultiStart(acq_objective, acq_batch, starts);

        // Under cost-normalization acq.value is in useful-improvement-
        // per-second units (EI·(1−p)/E[cost]), and its maximizer is
        // not the raw-EI maximizer. Since E[cost] ≤ W, acq.value * W
        // upper-bounds the maximum expected USEFUL improvement
        // EI·(1−p) — the improvement a probe can actually deliver, an
        // aborted window never winning. Driving the EI-drop
        // termination and the lookahead with that bound keeps both
        // conservative: neither can fire before the achievable
        // improvement has actually dropped.
        const double max_ei =
            normalize_cost ? acq.value * window_s : acq.value;

        // Lookahead cutoff: with n affordable windows left, even the
        // optimistic total improvement n·maxEI no longer matters.
        if (budgeted && budget.lookaheadExhausted(max_ei)) {
            CLITE_LOG_DEBUG("budget lookahead cutoff at iteration "
                            << iter << ": max EI " << max_ei << " with "
                            << budget.remaining()
                            << "s remaining cannot beat the incumbent");
            budget_stopped = true;
            break;
        }

        // ---- Termination on expected-improvement drop: the EI curve
        // must stay below the (job-count-scaled) threshold for a few
        // consecutive iterations after a minimum search depth. While
        // NO feasible configuration has been found the termination is
        // disabled outright: stopping there amounts to declaring the
        // co-location impossible, a call that belongs to the
        // max-allocation bootstrap test, not to a misfit surrogate
        // whose EI collapses on the mode-1 plateau.
        bool any_feasible = false;
        for (const auto& rec : trace)
            any_feasible =
                any_feasible || (rec.usable() && rec.all_qos_met);
        below_threshold_streak =
            max_ei < threshold ? below_threshold_streak + 1 : 0;
        if (any_feasible && iter >= options_.min_iterations &&
            below_threshold_streak >= options_.termination_patience) {
            CLITE_LOG_DEBUG("terminating at iteration "
                            << iter << ": EI " << max_ei
                            << " below threshold " << threshold << " for "
                            << below_threshold_streak << " iterations");
            break;
        }

        // ---- Round to the lattice; never resample a configuration.
        const platform::Allocation* frozen =
            dead_count > 0 ? &server.currentAllocation() : nullptr;
        platform::Allocation next = roundWithPinning(
            acq.x, njobs, config, fixed_job, fixed_units, dead, frozen);
        int guard = 0;
        while (seen.count(next.key()) && guard++ < 32) {
            // Perturb: move one unit of a random (live) resource
            // between two random jobs.
            size_t r = size_t(rng.uniformInt(0, int64_t(nres) - 1));
            if (dead[r])
                continue;
            size_t from = size_t(rng.uniformInt(0, int64_t(njobs) - 1));
            size_t to = size_t(rng.uniformInt(0, int64_t(njobs) - 1));
            if (from != to)
                next.transferUnit(r, from, to);
        }
        if (seen.count(next.key())) {
            next = randomAllocation(njobs, config, rng);
            if (frozen != nullptr)
                for (size_t r = 0; r < nres; ++r)
                    if (dead[r])
                        for (size_t j = 0; j < njobs; ++j)
                            next.set(j, r, frozen->get(j, r));
        }
        if (seen.count(next.key()))
            break; // space effectively exhausted

        // Surrogate-surprise (large history only): compare the
        // observed score with the posterior at the probe point. A
        // miss outside the 3σ band (with a 0.05 absolute floor, the
        // score scale's own noise) means the current
        // hyper-parameters misdescribe the surface, so the stretched
        // cadence pulls the next refit forward. Below the threshold
        // nothing is predicted and the trace stays bit-identical to
        // the fixed-cadence search.
        if (surrogate.sampleCount() >= stretch_threshold &&
            stretch_threshold > 0) {
            const gp::Prediction pr =
                surrogate.predict(next.flattenNormalized());
            if (evaluate_unique(next) && trace.back().usable()) {
                const double band = std::max(0.05, 3.0 * pr.stddev());
                if (std::fabs(trace.back().score - pr.mean) > band)
                    surprise_pending = true;
            }
        } else {
            evaluate_unique(next);
        }
    }

    // ---- Polish phase: slack-directed local moves around the
    // incumbent. The Eq. 3 optimum usually sits on the feasibility
    // boundary — LC jobs trimmed to just-enough resources, everything
    // else on the BG jobs (exactly the reshuffling Sec. 5.2 describes:
    // "it takes away particular types of resources from LC jobs to
    // help improve streamcluster performance"). EI's exploration bonus
    // avoids that cliff, so an exploitation pass harvests it: each
    // step donates one unit from the job with the most observed QoS
    // headroom to the worst-performing job, choosing the resource (or
    // equivalence-class double-move) the surrogate ranks highest.
    std::vector<char> polish_dead(nres, 0);
    if (resilient)
        for (size_t r : server.deadResources())
            polish_dead[r] = 1;
    for (int it = 0; it < options_.polish_iterations; ++it) {
        if (budgeted && !budget.canAffordWindow()) {
            budget_stopped = true;
            break;
        }
        std::vector<size_t> usable = usable_indices();
        if (usable.empty())
            break;
        std::vector<size_t> train = surrogate_indices();
        std::vector<linalg::Vector> xs;
        std::vector<double> ys;
        xs.reserve(train.size());
        for (size_t i : train) {
            xs.push_back(trace[i].alloc.flattenNormalized());
            ys.push_back(trace[i].score);
        }
        surrogate.fitIncremental(xs, ys);

        size_t best_idx = usable[0];
        for (size_t i : usable)
            if (trace[i].score > trace[best_idx].score)
                best_idx = i;
        const SampleRecord& incumbent_rec = trace[best_idx];
        const platform::Allocation& incumbent_alloc = incumbent_rec.alloc;

        // Donor: the LC job with the most QoS headroom (it can spare
        // resources). Recipient: the worst-performing job — a BG job
        // when QoS is met everywhere, the most violating LC job
        // otherwise (then BG jobs become donors too).
        int donor = -1, recipient = -1;
        double donor_metric = -1e100, recipient_metric = 1e100;
        const bool feasible_now = incumbent_rec.all_qos_met;
        for (size_t j = 0; j < njobs; ++j) {
            const platform::JobObservation& ob =
                incumbent_rec.observations[j];
            if (feasible_now) {
                // Donors: slackest LC job. Recipients: worst job by
                // normalized performance (BG preferred: LC perf is
                // capped once QoS is met).
                if (ob.is_lc && ob.qosRatio() > donor_metric) {
                    donor_metric = ob.qosRatio();
                    donor = int(j);
                }
                double p = ob.is_lc ? 1.0 + ob.perfNorm() : ob.perfNorm();
                if (p < recipient_metric) {
                    recipient_metric = p;
                    recipient = int(j);
                }
            } else {
                // Donors: BG jobs and slack LC jobs. Recipient: the
                // most violating LC job.
                double slack = ob.is_lc ? ob.qosRatio() : 1e6;
                if (slack > donor_metric) {
                    donor_metric = slack;
                    donor = int(j);
                }
                if (ob.is_lc && ob.qosRatio() < recipient_metric) {
                    recipient_metric = ob.qosRatio();
                    recipient = int(j);
                }
            }
        }
        if (donor < 0 || recipient < 0 || donor == recipient)
            break;
        const size_t from = size_t(donor), to = size_t(recipient);

        // Candidate moves from donor to recipient, ranked by the
        // surrogate's posterior mean.
        platform::Allocation best_neighbor = incumbent_alloc;
        double best_mean = -1e100;
        bool found = false;
        auto consider = [&](const platform::Allocation& cand) {
            if (seen.count(cand.key()))
                return;
            double mean =
                surrogate.predict(cand.flattenNormalized()).mean;
            if (mean > best_mean) {
                best_mean = mean;
                best_neighbor = cand;
                found = true;
            }
        };
        for (size_t r = 0; r < nres; ++r) {
            if (polish_dead[r] || incumbent_alloc.get(from, r) <= 1)
                continue;
            platform::Allocation one = incumbent_alloc;
            one.transferUnit(r, from, to);
            consider(one);
            for (size_t r2 = 0; r2 < nres; ++r2) {
                if (r2 == r || polish_dead[r2])
                    continue;
                // Same direction on a second resource.
                if (one.get(from, r2) > 1) {
                    platform::Allocation both = one;
                    both.transferUnit(r2, from, to);
                    consider(both);
                }
                // Equivalence-class swap: give r, take back r2.
                if (one.get(to, r2) > 1) {
                    platform::Allocation swap = one;
                    swap.transferUnit(r2, to, from);
                    consider(swap);
                }
            }
        }
        if (!found)
            break; // donor->recipient neighborhood exhausted
        evaluate_unique(best_neighbor);
    }

    // Search probes are done: everything from here on (validation
    // re-measurement, and the monitoring windows the caller runs
    // next) must observe at full fidelity.
    coarse_guard.release();

    // ---- Validation: re-measure the top candidates for extra
    // observation windows so boundary noise cannot promote a truly
    // QoS-violating configuration. Fault-free: the recorded score
    // becomes the mean across windows and QoS must hold in EVERY
    // window. Under faults the aggregation is robust instead —
    // median-of-k score and majority QoS vote — so one latency-spike
    // outlier can neither demote a genuinely good configuration nor
    // let a bad one slip through on a lucky window; dropout/stale
    // windows are discarded and re-measured.
    if (options_.validation_windows > 0 && !trace.empty() && resilient) {
        std::vector<size_t> order = usable_indices();
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return trace[a].score > trace[b].score;
        });
        size_t ncand = std::min(size_t(options_.validation_candidates),
                                order.size());
        for (size_t c = 0; c < ncand; ++c) {
            SampleRecord& rec = trace[order[c]];
            server.apply(rec.alloc);
            for (int a = 0;
                 a < options_.apply_retries && !server.lastApplyOk(); ++a)
                server.apply(rec.alloc);
            if (!server.lastApplyOk())
                continue; // cannot re-program: keep the sample as-is
            std::vector<double> scores = {rec.score};
            int met_votes = rec.all_qos_met ? 1 : 0;
            int windows = 0;
            int attempts = 0;
            const int max_attempts = options_.validation_windows * 2 + 2;
            while (windows < options_.validation_windows &&
                   attempts < max_attempts) {
                if (budgeted && !budget.canAffordWindow()) {
                    budget_stopped = true;
                    break;
                }
                ++attempts;
                std::vector<platform::JobObservation> obs =
                    server.observe();
                bool faulted = false;
                for (const auto& ob : obs)
                    faulted = faulted || !ob.valid || ob.stale;
                if (faulted) {
                    // Wasted window, re-measure. Still paid for — and
                    // faulted telemetry cannot certify QoS.
                    budget.chargeWindow(false);
                    rec.cost_seconds += window_s;
                    continue;
                }
                ScoreBreakdown sb = scoreObservations(obs);
                budget.chargeWindow(sb.all_qos_met);
                rec.cost_seconds += window_s;
                scores.push_back(sb.score);
                if (sb.all_qos_met)
                    ++met_votes;
                ++windows;
            }
            rec.score = stats::percentile(scores, 0.5);
            rec.all_qos_met = met_votes * 2 > int(scores.size());
            if (!rec.all_qos_met)
                rec.score = std::min(rec.score, 0.5);
        }
    } else if (options_.validation_windows > 0 && !trace.empty()) {
        std::vector<size_t> order(trace.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return trace[a].score > trace[b].score;
        });
        size_t ncand = std::min(size_t(options_.validation_candidates),
                                order.size());
        for (size_t c = 0; c < ncand; ++c) {
            SampleRecord& rec = trace[order[c]];
            double score_sum = rec.score;
            bool met = rec.all_qos_met;
            server.apply(rec.alloc);
            int done = 0;
            for (int w = 0; w < options_.validation_windows; ++w) {
                if (budgeted && !budget.canAffordWindow()) {
                    budget_stopped = true;
                    break;
                }
                std::vector<platform::JobObservation> obs =
                    server.observe();
                ScoreBreakdown sb = scoreObservations(obs);
                budget.chargeWindow(sb.all_qos_met);
                rec.cost_seconds += window_s;
                score_sum += sb.score;
                met = met && sb.all_qos_met;
                ++done;
            }
            rec.score = score_sum / double(done + 1);
            rec.all_qos_met = met;
            if (!met)
                rec.score = std::min(rec.score, 0.5);
        }
    }

    ControllerResult result =
        finish(finalizeResult(server, std::move(trace), false));
    result.budget_exhausted = budget_stopped;
    return result;
}

} // namespace core
} // namespace clite

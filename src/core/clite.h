/**
 * @file
 * The CLITE controller (paper Sec. 3–4, Fig. 5).
 *
 * Bayesian-optimization search over resource-partition configurations:
 *
 *  1. Bootstrap with the informed sample set: the equal division of
 *     every resource plus, for each job, the "maximum allocation"
 *     extremum. The extrema double as an infeasibility test — an LC
 *     job that misses QoS with everything cannot be co-located and is
 *     reported for rescheduling without wasting BO cycles.
 *  2. Iterate: fit a Gaussian-process surrogate (Matérn kernel) to the
 *     (configuration, Eq. 3 score) samples; maximize Expected
 *     Improvement with ζ-exploration over the constrained space of
 *     Eq. 4–6 (projected-gradient multi-start on the continuous
 *     relaxation, then sum-preserving integer rounding); apply
 *     dropout-copy dimensionality reduction (hold the best-performing
 *     job's allocation at its best-seen value, optimize the rest);
 *     evaluate the chosen configuration for one observation window.
 *  3. Terminate when the expected improvement drops below a threshold
 *     scaled by the number of co-located jobs, or at the iteration cap.
 *
 * The controller then leaves the server programmed with the best
 * configuration seen. reoptimize() supports the Fig. 16 dynamic
 * scenario: on a load change, rerun the search seeded with the
 * incumbent.
 */

#ifndef CLITE_CORE_CLITE_H
#define CLITE_CORE_CLITE_H

#include <string>
#include <vector>

#include "bo/budget.h"
#include "common/rng.h"
#include "core/controller.h"

namespace clite {
namespace core {

/** CLITE tuning knobs (paper defaults). */
struct CliteOptions
{
    /** EI exploration factor ζ (Eq. 2); ~0.01 works well (Lizotte). */
    double ei_zeta = 0.01;
    /**
     * Base EI termination threshold (~1% of the score scale); scaled
     * by the number of co-located jobs internally.
     */
    double termination_threshold = 0.01;
    /** Hard cap on BO iterations after bootstrapping (N_iter). */
    int max_iterations = 40;
    /**
     * Minimum BO iterations before the EI-drop termination applies —
     * the termination watches the *drop* of the EI curve, which needs
     * history; a cold surrogate can under-estimate EI at iteration 0.
     */
    int min_iterations = 6;
    /** Refit GP hyper-parameters every this many iterations. */
    int gp_fit_every = 3;
    /** Random restarts per hyper-parameter fit. */
    int gp_restarts = 1;
    /** Enable dropout-copy dimensionality reduction. */
    bool dropout = true;
    /**
     * Probability of dropping a random job instead of the best
     * performer (the "small probabilistic factor" behind CLITE's
     * residual run-to-run variability, Fig. 11).
     */
    double dropout_random_prob = 0.15;
    /** Use the informed bootstrap set (false: random, for ablation). */
    bool informed_bootstrap = true;
    /** Multi-start count for the acquisition maximization. */
    int acquisition_starts = 8;
    /** Surrogate kernel name ("matern52" | "matern32" | "rbf"). */
    std::string kernel = "matern52";
    /**
     * Use per-dimension (ARD) length-scales; off by default because
     * ARD overfits in CLITE's few-samples-per-dimension regime.
     */
    bool ard = false;
    /** Consecutive below-threshold EI iterations required to stop. */
    int termination_patience = 2;
    /**
     * Surrogate-guided local refinement after the EI termination:
     * each step evaluates the single-unit resource transfer around the
     * incumbent that the GP posterior mean ranks highest. This is the
     * "keeps reshuffling resources to improve every job's performance"
     * behaviour of Fig. 15b, where the score optimum sits on the QoS
     * feasibility boundary that EI's risk-aversion avoids.
     */
    int polish_iterations = 10;
    /**
     * Extra observation windows spent re-measuring each of the top
     * candidate configurations before committing (the counterpart of
     * the paper's "observation period ... ensures CLITE has
     * sufficient queries to calculate QoS violations with high
     * statistical significance"): measurement noise at the QoS
     * boundary can otherwise promote a configuration that truly
     * misses its targets.
     */
    int validation_windows = 2;
    /** How many top candidates the validation re-measures. */
    int validation_candidates = 3;
    /** Acquisition name ("ei" | "pi" | "ucb") for ablations. */
    std::string acquisition = "ei";
    /** RNG seed for all stochastic choices. */
    uint64_t seed = 7;
    /**
     * Fault tolerance. Only active when the server has fault
     * injection enabled — on a fault-free server the search is
     * bit-identical with the flag on or off. When active: transient
     * apply failures are retried with bounded exponential back-off,
     * samples measured during fault windows are quarantined (kept in
     * the trace but never fed to the GP or eligible as the winner),
     * validation aggregates with median score / majority QoS vote to
     * reject latency-spike outliers, and a permanently dead resource
     * knob collapses that search dimension instead of aborting.
     */
    bool resilient = true;
    /** Extra apply attempts per sample on transient failure. */
    int apply_retries = 3;
    /** Base of the exponential retry back-off (modeled ms). */
    double retry_backoff_ms = 8.0;
    /**
     * Cost-aware, budget-bounded search (bo/budget.h). With the
     * default unlimited budget the policy is inert and the search is
     * bit-identical to the EI-threshold baseline; a finite positive
     * budget_seconds enables budget accounting, cost-normalized
     * acquisition, the lookahead cutoff, and mid-window early-abort
     * of clearly infeasible probe windows.
     */
    bo::BudgetOptions budget;
    /**
     * DES event budget applied to SEARCH probe windows (coarse mode,
     * docs/MODEL.md): bootstrap sweeps, BO iterations and polish
     * moves measure under min(window, budget/λ) spans, cutting the
     * simulated-event bill at fleet scale. Validation windows — and
     * every window observed outside the search, i.e. the monitoring
     * ticks checkpoints are built from — always run fine-mode: the
     * budget is restored to 0 before validation and on every search
     * exit path. 0 (the default) leaves everything fine-mode; models
     * without an event budget (the analytic backend) ignore it.
     */
    uint64_t search_event_budget = 0;
};

/**
 * Prior knowledge about a job mix, extracted from the warm-start
 * profile store (store/warm_start.h), that seeds the bootstrap with
 * evaluated configurations from an earlier run of the same (or a
 * similar) mix instead of cold equal-division-only starts.
 */
struct WarmStart
{
    /**
     * Prior evaluated configurations, best first; each is re-measured
     * fresh during bootstrap (prior SCORES are never trusted — loads,
     * noise seeds and co-runners may differ; only the locations carry
     * over).
     */
    std::vector<platform::Allocation> configs;
    /** The prior run's incumbent, tried before everything else. */
    std::optional<platform::Allocation> incumbent;
    /**
     * The prior run of this EXACT mix converged with all QoS met: the
     * per-job maximum-allocation extrema (whose only purpose is the
     * infeasibility test) are skipped, saving one bootstrap window
     * per job. Never set for similar-mix (load-drifted) priors.
     */
    bool trusted_feasible = false;

    /** True when there is nothing to seed with. */
    bool empty() const
    {
        return configs.empty() && !incumbent.has_value();
    }
};

/**
 * The CLITE policy.
 */
class CliteController : public Controller
{
  public:
    explicit CliteController(CliteOptions options = {});

    std::string name() const override { return "clite"; }

    ControllerResult run(platform::SimulatedServer& server) override;

    /**
     * run() seeded with prior-mix knowledge. With an empty WarmStart
     * this is bit-identical to run().
     */
    ControllerResult runWarm(platform::SimulatedServer& server,
                             const WarmStart& warm);

    /**
     * Re-invoke the search after a load or mix change (Fig. 16),
     * seeding the bootstrap with @p incumbent so adaptation starts
     * from the previously best configuration.
     */
    ControllerResult reoptimize(platform::SimulatedServer& server,
                                const platform::Allocation& incumbent);

    /**
     * reoptimize() additionally seeded with prior-mix knowledge (the
     * cluster path: an evicted job's destination node warm-starts
     * from what the fleet store knows about its new mix). With an
     * empty WarmStart this is bit-identical to reoptimize().
     */
    ControllerResult reoptimizeWarm(platform::SimulatedServer& server,
                                    const platform::Allocation& incumbent,
                                    const WarmStart& warm);

    /** The options in effect. */
    const CliteOptions& options() const { return options_; }

  private:
    ControllerResult search(platform::SimulatedServer& server,
                            const platform::Allocation* incumbent,
                            const WarmStart* warm = nullptr);

    CliteOptions options_;
};

} // namespace core
} // namespace clite

#endif // CLITE_CORE_CLITE_H

/**
 * @file
 * Online monitoring and re-invocation (paper Sec. 4, "Putting it all
 * together"): after CLITE settles on a partition, "performance for
 * all jobs is periodically monitored. If the observed performance or
 * the job mix changes, CLITE can be reinvoked to determine the new
 * optimal resource partition."
 *
 * OnlineManager wraps a SimulatedServer and a CliteController into
 * that loop: each tick() is one observation window; sustained QoS
 * violations, drift of an LC job's observed load away from the level
 * the incumbent was optimized for, and job arrivals/departures all
 * trigger a re-optimization seeded with the incumbent configuration.
 *
 * The loop is fault-tolerant (all of it inert on a fault-free
 * server): windows whose telemetry is lost or stale are quarantined —
 * they advance no violation/drift streak, so a glitch cannot trigger
 * a spurious re-optimization; a watchdog verifies each window that
 * the incumbent is actually programmed, re-applies it with bounded
 * retries after a transient apply failure, and after repeated
 * failures degrades gracefully to the last known-good configuration
 * (or the equal share when none is known); a job crash holds the
 * re-optimization triggers while the job is down — no partition can
 * fix a dead process — and its restart re-captures the per-job
 * reference rates.
 *
 * Preconditions: initialize() must complete before tick(),
 * incumbent() or lastResult() is used; each of those throws
 * clite::Error (with a message naming the missing initialize() call)
 * when invoked early. notifyMixChange() may be called at any time
 * after construction; a mix change notified before the first tick()
 * is honoured by that first tick().
 */

#ifndef CLITE_CORE_MONITOR_H
#define CLITE_CORE_MONITOR_H

#include <optional>
#include <string>
#include <vector>

#include "core/clite.h"
#include "store/profile_store.h"
#include "store/warm_start.h"

namespace clite {
namespace core {

/**
 * Transient-vs-shift reoptimization policy (paper Fig. 16 asks when a
 * load change warrants re-running the search; realistic traffic makes
 * the answer "not always": a flash crowd decays before a fresh search
 * could even finish, so the incumbent should ride it out).
 */
enum class ReoptPolicy {
    /** Trigger at the configured patience (the legacy behaviour). */
    Immediate,
    /**
     * Ride short bursts on the incumbent: a violation/drift streak
     * must outlast the configured patience PLUS transient_ride_windows
     * before a re-optimization fires. A streak that reaches the
     * Immediate threshold but dies before the ride threshold counts as
     * a transient ridden (OnlineManager::transientsRidden()); one that
     * survives counts as a sustained shift (sustainedShifts()).
     */
    RideTransients,
};

/** Monitoring knobs. */
struct MonitorOptions
{
    /** Consecutive QoS-violating windows before re-optimizing. */
    int violation_patience = 2;
    /**
     * Relative deviation of an LC job's observed completion rate from
     * the rate its incumbent partition was optimized for that counts
     * as load drift (e.g. 0.2 = 20%).
     */
    double load_drift_threshold = 0.20;
    /** Consecutive drifting windows before re-optimizing. */
    int drift_patience = 2;
    /**
     * Watchdog: consecutive windows with a failed incumbent
     * re-programming before falling back to the last known-good
     * configuration (equal share when none is known).
     */
    int apply_fail_patience = 3;
    /** Watchdog: re-apply attempts per window on apply failure. */
    int apply_retries = 2;
    /** Warm-start extraction knobs (profile store attached only). */
    store::WarmStartOptions warm_start;
    /**
     * Checkpoint to the attached store after every window and search
     * (checkpoint-on-window). The fleet turns this off and pulls
     * checkpoints itself in its serial aggregation phase so that
     * store writes happen in deterministic node order rather than
     * from pool threads.
     */
    bool auto_checkpoint = true;
    /** Sample cap per checkpoint snapshot. */
    int checkpoint_max_samples = 64;
    /** Transient-vs-shift reoptimization policy. */
    ReoptPolicy reopt_policy = ReoptPolicy::Immediate;
    /**
     * Hysteresis of RideTransients: extra consecutive windows (beyond
     * the violation/drift patience) a streak must persist before it is
     * treated as a sustained shift and re-optimized. Ignored under
     * Immediate.
     */
    int transient_ride_windows = 3;
};

/**
 * One monitoring window's percentile-over-time QoS record: the worst
 * LC tail ratios of the window, not just the run's means — the time
 * series violating-window fractions are computed from.
 */
struct WindowQos
{
    /** max over LC jobs of observed p95 / target (0 when no LC). */
    double worst_p95_ratio = 0.0;
    /** max over LC jobs of observed p99 / target (0 when no LC). */
    double worst_p99_ratio = 0.0;
    /** Some LC job missed its p95 target this window. */
    bool violated = false;
    /** Quarantined window: the ratios describe a fault, not the
     *  partition; excluded from violatingWindowFraction(). */
    bool faulted = false;
};

/**
 * The steady-state controller loop.
 */
class OnlineManager
{
  public:
    /**
     * @param server The co-location server (not owned; must outlive).
     * @param clite_options Options for the wrapped CLITE controller.
     * @param options Monitoring knobs.
     * @param store Optional warm-start profile store (not owned; must
     *     outlive). With a store attached, initialize() restores prior
     *     knowledge of the mix (exact signature hit, else the nearest
     *     similar mix within warm_start.max_distance) and the manager
     *     checkpoints its learned state back — which is also the
     *     crash-recovery path: a controller rebuilt on the same
     *     server with the same store resumes from the last
     *     checkpoint instead of re-learning from scratch.
     */
    OnlineManager(platform::SimulatedServer& server,
                  CliteOptions clite_options = {},
                  MonitorOptions options = {},
                  store::ProfileStore* store = nullptr);

    /**
     * Run the initial optimization. Must be called before tick().
     * When the search yields no usable configuration (possible under
     * heavy faults), the manager falls back to the equal-share
     * partition as its incumbent instead of failing.
     * @return The search result (also retained internally).
     */
    const ControllerResult& initialize();

    /** Outcome of one monitoring window. */
    struct Tick
    {
        bool all_qos_met = false;   ///< QoS state of this window.
        double score = 0.0;         ///< Eq. 3 score of this window.
        bool reoptimized = false;   ///< A re-optimization ran.
        std::string reason;         ///< Why ("qos-violation", ...).
        int search_samples = 0;     ///< Samples spent if reoptimized.
        /**
         * The window's telemetry was quarantined (lost/stale
         * measurement or a crashed job): its QoS/score describe the
         * fault, not the partition, and no streak advanced.
         */
        bool faulted = false;
        /** The watchdog fell back to a degraded configuration. */
        bool fallback = false;
        /**
         * The window was cancelled mid-measurement by the budget
         * layer's early-abort: the partial tail already proved a
         * clear QoS violation, so the violation streak advanced
         * without paying for the rest of the window. The score/QoS
         * fields describe the partial reading; the checkpointed
         * incumbent QoS state keeps its pre-abort value (a partial
         * window must not poison the snapshot).
         */
        bool aborted = false;
    };

    /**
     * One observation window plus the re-invocation decision.
     * @pre initialize() has been called.
     * @throws clite::Error when called before initialize().
     */
    Tick tick();

    /**
     * Tell the manager the job mix changed (after calling the
     * server's addJob/removeJob): the next tick() re-optimizes. When
     * the change is a single appended job (the addJob contract), the
     * search is seeded with the incumbent adapted to the new shape
     * (Allocation::withJobAdded) so adaptation starts warm; any other
     * shape change falls back to a from-scratch search. Valid at any
     * time, including before the first tick().
     */
    void notifyMixChange();

    /**
     * notifyMixChange() carrying the removed job's former server
     * index: the next tick()'s search is seeded with the incumbent
     * minus that job's row (Allocation::withJobRemoved) — the warm
     * start for the departure/eviction half of cluster rescheduling.
     *
     * @param server_index The index the job had before removeJob().
     */
    void notifyJobRemoved(size_t server_index);

    /**
     * The incumbent configuration (the degraded fallback when the
     * watchdog demoted a failing incumbent).
     * @pre initialize() has been called.
     * @throws clite::Error when called before initialize().
     */
    const platform::Allocation& incumbent() const;

    /** Number of re-optimizations triggered so far (excl. initial). */
    int reoptimizations() const { return reoptimizations_; }

    /** Number of monitoring windows observed so far. */
    int windows() const { return windows_; }

    /** Number of watchdog fallbacks to a degraded configuration. */
    int fallbacks() const { return fallbacks_; }

    /** Number of quarantined (faulted) windows so far. */
    int faultedWindows() const { return faulted_windows_; }

    /** Number of monitoring windows early-aborted so far. */
    int abortedWindows() const { return aborted_windows_; }

    /** Cumulative GP hyper-refits across all searches run so far. */
    uint64_t refits() const { return refits_; }

    /** Cumulative hyper-probe objective evaluations so far. */
    uint64_t probeEvals() const { return probe_evals_; }

    /** Cumulative warm-simplex probes that won (restarts skipped). */
    uint64_t warmProbeHits() const { return warm_probe_hits_; }

    /** Cumulative windows measured in coarse (event-budgeted) mode. */
    uint64_t coarseWindows() const { return coarse_windows_; }

    /** Current consecutive QoS-violating window count (for tests). */
    int violationStreak() const { return violation_streak_; }

    /** Current consecutive drifting window count (for tests). */
    int driftStreak() const { return drift_streak_; }

    /** Per-window percentile-over-time QoS records, oldest first. */
    const std::vector<WindowQos>& qosTimeline() const
    {
        return qos_timeline_;
    }

    /** Non-faulted windows with a QoS verdict (the denominator of
     *  violatingWindowFraction()). */
    int qosWindows() const { return clean_windows_; }

    /** Non-faulted windows where some LC job missed its p95 target. */
    int violatingWindows() const { return violating_windows_; }

    /**
     * Fraction of non-faulted monitoring windows that violated QoS
     * (0 when none have been observed) — the percentile-over-time QoS
     * metric the traffic benchmarks gate on.
     */
    double violatingWindowFraction() const
    {
        return clean_windows_ > 0
                   ? double(violating_windows_) / double(clean_windows_)
                   : 0.0;
    }

    /** Streaks that reached the Immediate threshold but decayed before
     *  the RideTransients threshold (re-optimizations avoided). */
    int transientsRidden() const { return transients_ridden_; }

    /** Violation/drift re-optimizations that fired under
     *  RideTransients (the streak outlasted the ride window). */
    int sustainedShifts() const { return sustained_shifts_; }

    /**
     * The result of the most recent search.
     * @pre initialize() has been called.
     * @throws clite::Error when called before initialize().
     */
    const ControllerResult& lastResult() const;

    /**
     * Where the initial search's seed came from: "cold" (no store or
     * no usable prior), "exact" (same-mix snapshot), or "similar"
     * (nearest-mix snapshot within the distance bound).
     */
    const char* warmSource() const { return warm_source_; }

    /**
     * Snapshot of the current learned state (the checkpoint the
     * manager would write). Exposed so the fleet can collect
     * checkpoints in its serial phase in deterministic node order.
     * @pre initialize() has been called.
     */
    store::Snapshot makeCheckpoint() const;

    /** The attached profile store (nullptr when none). */
    store::ProfileStore* profileStore() const { return store_; }

  private:
    /** put(makeCheckpoint()) when a store is attached (auto mode). */
    void checkpoint();

    /**
     * Look up the store for the server's current mix and build a
     * WarmStart (empty when nothing usable is stored).
     */
    WarmStart lookupWarmStart();
    /** Record the per-LC-job reference rates of the incumbent. */
    void captureReference();

    /** Run a re-optimization and reset monitor state. */
    void reoptimize(const std::string& reason, bool mix_changed);

    /** Fold last_result_'s refit/coarse counters into the totals. */
    void accumulateSearchStats();

    /** Append this window's WindowQos record to the timeline. */
    void recordWindowQos(const std::vector<platform::JobObservation>& obs,
                         bool faulted);

    /** Violation threshold in effect (patience + ride hysteresis). */
    int effectiveViolationPatience() const;

    /** Drift threshold in effect (patience + ride hysteresis). */
    int effectiveDriftPatience() const;

    /** Adopt @p result's winner (or a fallback) as the incumbent. */
    void adoptResult();

    /**
     * Watchdog: verify the incumbent is programmed; re-apply with
     * bounded retries; degrade to last known-good / equal share after
     * apply_fail_patience consecutive failing windows.
     * @return True when the incumbent is verified programmed (only
     *     such windows may record a last known-good configuration).
     */
    bool watchdog(Tick& out);

    platform::SimulatedServer& server_;
    CliteController clite_;
    MonitorOptions options_;
    store::ProfileStore* store_ = nullptr;
    const char* warm_source_ = "cold";
    bool last_window_qos_met_ = false;

    std::optional<ControllerResult> last_result_;
    std::optional<platform::Allocation> incumbent_;
    std::optional<platform::Allocation> last_known_good_;
    std::vector<double> reference_rate_; // per-job completions/s (LC)
    std::vector<char> job_down_;         // crash state per job
    int violation_streak_ = 0;
    int drift_streak_ = 0;
    /** RideTransients: the streak passed the Immediate threshold and
     *  is being ridden; resolves to a transient or a sustained shift. */
    bool violation_riding_ = false;
    bool drift_riding_ = false;
    int apply_fail_streak_ = 0;
    bool mix_changed_ = false;
    std::optional<size_t> removed_job_; ///< Index removed since last tick.
    int reoptimizations_ = 0;
    int windows_ = 0;
    int fallbacks_ = 0;
    int faulted_windows_ = 0;
    int aborted_windows_ = 0;
    uint64_t refits_ = 0;
    uint64_t probe_evals_ = 0;
    uint64_t warm_probe_hits_ = 0;
    uint64_t coarse_windows_ = 0;
    std::vector<WindowQos> qos_timeline_;
    int clean_windows_ = 0;     ///< Non-faulted windows recorded.
    int violating_windows_ = 0; ///< Non-faulted violating windows.
    int transients_ridden_ = 0;
    int sustained_shifts_ = 0;
};

} // namespace core
} // namespace clite

#endif // CLITE_CORE_MONITOR_H

/**
 * @file
 * Online monitoring and re-invocation (paper Sec. 4, "Putting it all
 * together"): after CLITE settles on a partition, "performance for
 * all jobs is periodically monitored. If the observed performance or
 * the job mix changes, CLITE can be reinvoked to determine the new
 * optimal resource partition."
 *
 * OnlineManager wraps a SimulatedServer and a CliteController into
 * that loop: each tick() is one observation window; sustained QoS
 * violations, drift of an LC job's observed load away from the level
 * the incumbent was optimized for, and job arrivals/departures all
 * trigger a re-optimization seeded with the incumbent configuration.
 */

#ifndef CLITE_CORE_MONITOR_H
#define CLITE_CORE_MONITOR_H

#include <optional>
#include <string>
#include <vector>

#include "core/clite.h"

namespace clite {
namespace core {

/** Monitoring knobs. */
struct MonitorOptions
{
    /** Consecutive QoS-violating windows before re-optimizing. */
    int violation_patience = 2;
    /**
     * Relative deviation of an LC job's observed completion rate from
     * the rate its incumbent partition was optimized for that counts
     * as load drift (e.g. 0.2 = 20%).
     */
    double load_drift_threshold = 0.20;
    /** Consecutive drifting windows before re-optimizing. */
    int drift_patience = 2;
};

/**
 * The steady-state controller loop.
 */
class OnlineManager
{
  public:
    /**
     * @param server The co-location server (not owned; must outlive).
     * @param clite_options Options for the wrapped CLITE controller.
     * @param options Monitoring knobs.
     */
    OnlineManager(platform::SimulatedServer& server,
                  CliteOptions clite_options = {},
                  MonitorOptions options = {});

    /**
     * Run the initial optimization. Must be called before tick().
     * @return The search result (also retained internally).
     */
    const ControllerResult& initialize();

    /** Outcome of one monitoring window. */
    struct Tick
    {
        bool all_qos_met = false;   ///< QoS state of this window.
        double score = 0.0;         ///< Eq. 3 score of this window.
        bool reoptimized = false;   ///< A re-optimization ran.
        std::string reason;         ///< Why ("qos-violation", ...).
        int search_samples = 0;     ///< Samples spent if reoptimized.
    };

    /**
     * One observation window plus the re-invocation decision.
     * @pre initialize() has been called.
     */
    Tick tick();

    /**
     * Tell the manager the job mix changed (after calling the
     * server's addJob/removeJob): the next tick() re-optimizes from
     * scratch (the incumbent's shape no longer matches).
     */
    void notifyMixChange();

    /** The incumbent configuration. @pre initialize() was called. */
    const platform::Allocation& incumbent() const;

    /** Number of re-optimizations triggered so far (excl. initial). */
    int reoptimizations() const { return reoptimizations_; }

    /** Number of monitoring windows observed so far. */
    int windows() const { return windows_; }

    /** The result of the most recent search. */
    const ControllerResult& lastResult() const;

  private:
    /** Record the per-LC-job reference rates of the incumbent. */
    void captureReference();

    /** Run a re-optimization and reset monitor state. */
    void reoptimize(const std::string& reason, bool mix_changed);

    platform::SimulatedServer& server_;
    CliteController clite_;
    MonitorOptions options_;

    std::optional<ControllerResult> last_result_;
    std::vector<double> reference_rate_; // per-job completions/s (LC)
    int violation_streak_ = 0;
    int drift_streak_ = 0;
    bool mix_changed_ = false;
    int reoptimizations_ = 0;
    int windows_ = 0;
};

} // namespace core
} // namespace clite

#endif // CLITE_CORE_MONITOR_H

#include "core/controller.h"

#include "common/error.h"

namespace clite {
namespace core {

int
ControllerResult::firstFeasibleSample() const
{
    for (size_t i = 0; i < trace.size(); ++i)
        if (trace[i].all_qos_met)
            return int(i);
    return -1;
}

SampleRecord
evaluateSample(platform::SimulatedServer& server,
               const platform::Allocation& alloc)
{
    std::vector<platform::JobObservation> obs = server.evaluate(alloc);
    ScoreBreakdown sb = scoreObservations(obs);
    return SampleRecord(alloc, sb.score, sb.all_qos_met, std::move(obs));
}

ControllerResult
finalizeResult(platform::SimulatedServer& server,
               std::vector<SampleRecord> trace, bool infeasible_detected)
{
    ControllerResult result;
    result.infeasible_detected = infeasible_detected;
    result.samples = int(trace.size());
    result.trace = std::move(trace);
    if (result.trace.empty())
        return result;

    size_t best = 0;
    for (size_t i = 1; i < result.trace.size(); ++i)
        if (result.trace[i].score > result.trace[best].score)
            best = i;
    result.best = result.trace[best].alloc;
    result.best_score = result.trace[best].score;
    result.feasible = false;
    for (const auto& rec : result.trace)
        if (rec.all_qos_met)
            result.feasible = true;

    // Leave the server running the winner.
    server.apply(*result.best);
    return result;
}

} // namespace core
} // namespace clite

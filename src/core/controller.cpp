#include "core/controller.h"

#include "common/error.h"

namespace clite {
namespace core {

const char*
sampleStatusName(SampleStatus status)
{
    switch (status) {
      case SampleStatus::Ok:
        return "ok";
      case SampleStatus::ApplyFailed:
        return "apply-failed";
      case SampleStatus::Dropout:
        return "dropout";
      case SampleStatus::Stale:
        return "stale";
      case SampleStatus::Crashed:
        return "crashed";
      case SampleStatus::Aborted:
        return "aborted";
    }
    return "unknown";
}

int
ControllerResult::firstFeasibleSample() const
{
    for (size_t i = 0; i < trace.size(); ++i)
        if (trace[i].usable() && trace[i].all_qos_met)
            return int(i);
    return -1;
}

int
ControllerResult::wastedSamples() const
{
    int wasted = 0;
    for (const auto& rec : trace) {
        if (!rec.usable())
            ++wasted;
        wasted += rec.apply_retries;
    }
    return wasted;
}

double
ControllerResult::chargedSeconds() const
{
    double total = 0.0;
    for (const auto& rec : trace)
        total += rec.cost_seconds;
    return total;
}

double
ControllerResult::violatingSampleSeconds() const
{
    double total = 0.0;
    for (const auto& rec : trace)
        if (!(rec.usable() && rec.all_qos_met))
            total += rec.cost_seconds;
    return total;
}

SampleRecord
recordFromObservations(const platform::SimulatedServer& server,
                       const platform::Allocation& alloc,
                       std::vector<platform::JobObservation> obs)
{
    ScoreBreakdown sb = scoreObservations(obs);
    SampleRecord rec(alloc, sb.score, sb.all_qos_met, std::move(obs));
    if (!server.lastApplyOk()) {
        rec.status = SampleStatus::ApplyFailed;
    } else {
        for (const auto& ob : rec.observations) {
            if (!ob.valid) {
                rec.status = SampleStatus::Dropout;
                break;
            }
            if (ob.stale) {
                rec.status = SampleStatus::Stale;
                break;
            }
            if (ob.crashed) {
                rec.status = SampleStatus::Crashed;
                break;
            }
        }
    }
    return rec;
}

SampleRecord
evaluateSample(platform::SimulatedServer& server,
               const platform::Allocation& alloc)
{
    std::vector<platform::JobObservation> obs = server.evaluate(alloc);
    return recordFromObservations(server, alloc, std::move(obs));
}

SampleRecord
evaluateSampleResilient(platform::SimulatedServer& server,
                        const platform::Allocation& alloc, int max_retries,
                        double backoff_base_ms)
{
    CLITE_CHECK(max_retries >= 0, "max_retries must be >= 0");
    SampleRecord rec = evaluateSample(server, alloc);
    int retries = 0;
    double backoff_ms = 0.0;
    while (rec.status == SampleStatus::ApplyFailed &&
           retries < max_retries) {
        // Bounded exponential back-off before re-applying; modeled
        // time only (the simulator has no wall clock to sleep on).
        backoff_ms += backoff_base_ms * double(1 << retries);
        ++retries;
        rec = evaluateSample(server, alloc);
    }
    rec.apply_retries = retries;
    rec.backoff_ms = backoff_ms;
    return rec;
}

ControllerResult
finalizeResult(platform::SimulatedServer& server,
               std::vector<SampleRecord> trace, bool infeasible_detected,
               std::vector<size_t> infeasible_jobs)
{
    ControllerResult result;
    result.infeasible_detected = infeasible_detected;
    result.infeasible_jobs = std::move(infeasible_jobs);
    result.samples = int(trace.size());
    result.trace = std::move(trace);

    // Only usable samples can win; an all-quarantined (or empty)
    // trace yields a well-formed "no usable configuration" outcome.
    size_t best = result.trace.size();
    for (size_t i = 0; i < result.trace.size(); ++i) {
        if (!result.trace[i].usable())
            continue;
        if (best == result.trace.size() ||
            result.trace[i].score > result.trace[best].score)
            best = i;
    }
    if (best == result.trace.size())
        return result;

    result.best = result.trace[best].alloc;
    result.best_score = result.trace[best].score;
    result.feasible = false;
    for (const auto& rec : result.trace)
        if (rec.usable() && rec.all_qos_met)
            result.feasible = true;

    // Leave the server running the winner. Under fault injection the
    // final programming can itself fail transiently; retry a few
    // times rather than hand back a server running a stale partition.
    server.apply(*result.best);
    for (int attempt = 0; attempt < 3 && !server.lastApplyOk(); ++attempt)
        server.apply(*result.best);
    return result;
}

} // namespace core
} // namespace clite

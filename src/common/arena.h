/**
 * @file
 * Per-thread scratch arenas for allocation-free hot loops.
 *
 * The batched GP posterior / acquisition engine needs O(n·B) of
 * workspace per candidate block (the cross-covariance panel, the
 * candidate SoA pack, per-row accumulators). Allocating that from the
 * heap on every block would put malloc on the hottest path in the
 * repo, so each thread owns a bump-allocated arena that grows to its
 * high-water mark once and is then reused forever: steady-state
 * acquisition rounds, hyper-fit probes and fleet lockstep windows
 * perform zero heap allocations (asserted by
 * tests/common/arena_test.cpp and the round-digest test in
 * tests/bo/acquisition_test.cpp).
 *
 * Usage is strictly scoped: open a Frame, take allocations, let the
 * Frame pop them on destruction. Frames nest (a batched predict inside
 * a batched acquisition inside a fleet window), and because the arena
 * is thread_local the pool's determinism contract is untouched — no
 * state is shared between workers.
 *
 * Growth never moves live allocations: when a request does not fit the
 * current chunk a new, larger chunk is appended, and the next
 * top-level reset() coalesces all chunks into one sized to the
 * high-water mark. growCount() exposes the number of underlying heap
 * allocations so tests can assert the steady state is allocation-free.
 */

#ifndef CLITE_COMMON_ARENA_H
#define CLITE_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace clite {

/**
 * Growable bump allocator handing out doubles (the only scalar the
 * numeric hot paths need). Not thread-safe; use one per thread via
 * forCurrentThread().
 */
class ScratchArena
{
  public:
    ScratchArena() = default;

    ScratchArena(const ScratchArena&) = delete;
    ScratchArena& operator=(const ScratchArena&) = delete;

    /**
     * Allocate @p n doubles (uninitialized). The pointer stays valid
     * until the enclosing Frame is destroyed; later allocations never
     * move it. Allocations are 64-byte aligned so compilers can emit
     * aligned vector loads over them.
     */
    double* doubles(size_t n);

    /**
     * RAII scope: restores the arena's allocation mark on destruction,
     * releasing everything taken since construction. The outermost
     * Frame additionally coalesces overflow chunks so the next round
     * runs out of a single buffer.
     */
    class Frame
    {
      public:
        explicit Frame(ScratchArena& arena);
        ~Frame();
        Frame(const Frame&) = delete;
        Frame& operator=(const Frame&) = delete;

      private:
        ScratchArena& arena_;
        size_t saved_chunk_;
        size_t saved_used_;
    };

    /**
     * Pre-size the arena to at least @p n doubles of contiguous
     * capacity so the first real round performs no heap allocation
     * (first-window jitter). Only legal at top level (no open Frame);
     * a no-op when the arena already owns enough. Counts as one grow
     * when it allocates.
     */
    void reserve(size_t n);

    /** Number of heap allocations performed so far (growth events). */
    uint64_t growCount() const { return grows_; }

    /** Largest total footprint (doubles) ever held live at once. */
    size_t highWater() const { return high_water_; }

    /** Total capacity currently owned (doubles). */
    size_t capacity() const;

    /** Open Frame count (0 at top level). */
    size_t depth() const { return depth_; }

    /** The calling thread's arena (lazily constructed, never freed). */
    static ScratchArena& forCurrentThread();

  private:
    struct Chunk
    {
        std::unique_ptr<double[]> data;
        size_t cap = 0;
        size_t used = 0;
    };

    /** Chunk granularity: 4096 doubles = 32 KiB. */
    static constexpr size_t kMinChunk = 4096;
    /** Alignment of every allocation, in doubles (64 bytes). */
    static constexpr size_t kAlignDoubles = 8;

    void coalesce();

    std::vector<Chunk> chunks_;
    size_t active_ = 0; ///< Chunk currently being bumped.
    size_t depth_ = 0;
    uint64_t grows_ = 0;
    size_t high_water_ = 0;
};

} // namespace clite

#endif // CLITE_COMMON_ARENA_H

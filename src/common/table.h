/**
 * @file
 * Table and CSV emission used by the bench harnesses.
 *
 * Every paper figure/table is regenerated as text: an aligned
 * human-readable table on stdout plus (optionally) a CSV file so the
 * series can be re-plotted. TextTable collects rows of strings and
 * right-aligns numeric-looking cells, matching the row/column layout of
 * the corresponding paper exhibit.
 */

#ifndef CLITE_COMMON_TABLE_H
#define CLITE_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace clite {

/**
 * An aligned text table with a header row.
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Number of columns. */
    size_t columns() const { return headers_.size(); }

    /** Number of data rows so far. */
    size_t rows() const { return rows_.size(); }

    /**
     * Append a row of already-formatted cells.
     * @pre cells.size() == columns()
     */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the decimal point. */
    static std::string num(double v, int precision = 2);

    /** Format an integer. */
    static std::string num(long long v);

    /** Format a value as a percentage ("87.5%"). */
    static std::string percent(double fraction, int precision = 1);

    /** Render the aligned table to a stream. */
    void print(std::ostream& os) const;

    /** Render as CSV (RFC-4180-ish quoting) to a stream. */
    void printCsv(std::ostream& os) const;

    /**
     * Write the CSV rendering to @p path, creating parent directories is
     * NOT attempted; throws clite::Error if the file cannot be opened.
     */
    void writeCsv(const std::string& path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Print a section banner ("== Figure 7: ... ==") used to delimit bench
 * output for each reproduced exhibit.
 */
void printBanner(std::ostream& os, const std::string& title);

} // namespace clite

#endif // CLITE_COMMON_TABLE_H

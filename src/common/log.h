/**
 * @file
 * Minimal leveled logging for the CLITE library.
 *
 * Mirrors the gem5 inform()/warn() split: informational progress
 * messages vs conditions that might explain surprising behaviour.
 * Logging is globally level-gated and writes to stderr so that bench
 * harness tables on stdout stay machine-parsable.
 */

#ifndef CLITE_COMMON_LOG_H
#define CLITE_COMMON_LOG_H

#include <sstream>
#include <string>

namespace clite {

/** Log severity levels, ordered. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/**
 * Global logging configuration and sink.
 */
class Log
{
  public:
    /** Set the minimum level that is emitted (default: Warn). */
    static void setLevel(LogLevel level);

    /** Current minimum emitted level. */
    static LogLevel level();

    /** True if a message at @p level would be emitted. */
    static bool enabled(LogLevel level);

    /** Emit a message at @p level (no-op when below the threshold). */
    static void write(LogLevel level, const std::string& msg);
};

} // namespace clite

/** Streamed debug message: CLITE_LOG_DEBUG("fit took " << ms << "ms"); */
#define CLITE_LOG_DEBUG(msg_stream) CLITE_LOG_AT_(Debug, msg_stream)
/** Streamed informational message. */
#define CLITE_LOG_INFO(msg_stream) CLITE_LOG_AT_(Info, msg_stream)
/** Streamed warning message. */
#define CLITE_LOG_WARN(msg_stream) CLITE_LOG_AT_(Warn, msg_stream)

#define CLITE_LOG_AT_(lvl, msg_stream)                                     \
    do {                                                                   \
        if (::clite::Log::enabled(::clite::LogLevel::lvl)) {               \
            std::ostringstream clite_log_oss_;                             \
            clite_log_oss_ << msg_stream;                                  \
            ::clite::Log::write(::clite::LogLevel::lvl,                    \
                                clite_log_oss_.str());                     \
        }                                                                  \
    } while (0)

#endif // CLITE_COMMON_LOG_H

#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace clite {

uint64_t
SplitMix64::next()
{
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto& s : state_)
        s = sm.next();
}

Rng
Rng::split(uint64_t tag)
{
    // Mix the tag with fresh output so children with different tags (or
    // from different parent states) are decorrelated.
    uint64_t seed = next() ^ (tag * 0xD1B54A32D192ED03ull + 1);
    return Rng(seed);
}

double
Rng::uniform(double lo, double hi)
{
    CLITE_CHECK(lo <= hi, "uniform bounds inverted: [" << lo << ", " << hi
                                                       << ")");
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    CLITE_CHECK(lo <= hi,
                "uniformInt bounds inverted: [" << lo << ", " << hi << "]");
    uint64_t span = uint64_t(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return int64_t(next());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = (~uint64_t{0} / span) * span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + int64_t(v % span);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

size_t
Rng::categorical(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        CLITE_CHECK(w >= 0.0, "categorical weight must be >= 0, got " << w);
        total += w;
    }
    CLITE_CHECK(total > 0.0, "categorical weights sum to zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1; // numerical edge: land on last bucket
}

} // namespace clite

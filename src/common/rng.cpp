#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace clite {

namespace {

/** Left-rotate for xoshiro. */
inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
SplitMix64::next()
{
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto& s : state_)
        s = sm.next();
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Rng
Rng::split(uint64_t tag)
{
    // Mix the tag with fresh output so children with different tags (or
    // from different parent states) are decorrelated.
    uint64_t seed = next() ^ (tag * 0xD1B54A32D192ED03ull + 1);
    return Rng(seed);
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    CLITE_CHECK(lo <= hi, "uniform bounds inverted: [" << lo << ", " << hi
                                                       << ")");
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    CLITE_CHECK(lo <= hi,
                "uniformInt bounds inverted: [" << lo << ", " << hi << "]");
    uint64_t span = uint64_t(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return int64_t(next());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = (~uint64_t{0} / span) * span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + int64_t(v % span);
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 in (0,1] so the log is finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormalMean(double mean, double sigma)
{
    CLITE_CHECK(mean > 0.0, "log-normal mean must be positive, got " << mean);
    // E[exp(N(mu, sigma^2))] = exp(mu + sigma^2/2) == mean.
    double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    CLITE_CHECK(rate > 0.0, "exponential rate must be positive, got "
                                << rate);
    return -std::log(1.0 - uniform()) / rate;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

size_t
Rng::categorical(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        CLITE_CHECK(w >= 0.0, "categorical weight must be >= 0, got " << w);
        total += w;
    }
    CLITE_CHECK(total > 0.0, "categorical weights sum to zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1; // numerical edge: land on last bucket
}

} // namespace clite

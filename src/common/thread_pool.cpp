#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace clite {

namespace {

/**
 * Shared state of one parallelFor call. Owned by shared_ptr: helper
 * jobs that only get scheduled after the loop has already completed
 * (all indices claimed by faster participants) still hold a valid
 * reference and exit immediately.
 */
struct ForLoopState
{
    std::atomic<size_t> next{0};    ///< Next unclaimed index.
    std::atomic<size_t> completed{0}; ///< Indices fully processed.
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;

    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    size_t error_index = size_t(-1);

    /** Claim-and-run loop shared by the caller and the helpers. */
    void
    run()
    {
        while (true) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mutex);
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
            }
            if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n) {
                std::lock_guard<std::mutex> lk(mutex);
                done_cv.notify_all();
            }
        }
    }
};

} // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads)
{
    workers_.reserve(size_t(threads_ - 1));
    for (int t = 1; t < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        queue_.push(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping
            job = std::move(queue_.front());
            queue_.pop();
        }
        job();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)>& fn)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto state = std::make_shared<ForLoopState>();
    state->n = n;
    state->fn = &fn;

    size_t helpers = size_t(threads_ - 1);
    if (helpers > n - 1)
        helpers = n - 1;
    for (size_t h = 0; h < helpers; ++h)
        submit([state] { state->run(); });

    // The caller claims indices too, then waits for stragglers.
    state->run();
    std::unique_lock<std::mutex> lk(state->mutex);
    state->done_cv.wait(lk, [&] {
        return state->completed.load(std::memory_order_acquire) == n;
    });
    if (state->error)
        std::rethrow_exception(state->error);
}

void
ThreadPool::parallelForBlocked(size_t n, size_t grain,
                               const std::function<void(size_t, size_t)>& fn)
{
    if (n == 0)
        return;
    if (grain < 1)
        grain = 1;
    const size_t nblocks = (n + grain - 1) / grain;
    auto run_block = [&](size_t b) {
        const size_t begin = b * grain;
        const size_t end = begin + grain < n ? begin + grain : n;
        fn(begin, end);
    };
    if (threads_ <= 1 || nblocks == 1) {
        for (size_t b = 0; b < nblocks; ++b)
            run_block(b);
        return;
    }
    parallelFor(nblocks, run_block);
}

void
ThreadPool::broadcast(const std::function<void()>& fn)
{
    if (threads_ <= 1) {
        fn();
        return;
    }
    // One job per worker; each runs fn then parks at a rendezvous
    // until every job has run. A worker cannot claim a second job
    // while parked, so the jobs land on distinct workers by
    // construction.
    const int helpers = threads_ - 1;
    struct Rendezvous
    {
        std::mutex mutex;
        std::condition_variable arrived_cv;
        std::condition_variable done_cv;
        int arrived = 0;
        int finished = 0;
        std::exception_ptr error;
    };
    auto rv = std::make_shared<Rendezvous>();
    for (int h = 0; h < helpers; ++h) {
        submit([rv, &fn, helpers] {
            try {
                fn();
            } catch (...) {
                std::lock_guard<std::mutex> lk(rv->mutex);
                if (!rv->error)
                    rv->error = std::current_exception();
            }
            std::unique_lock<std::mutex> lk(rv->mutex);
            ++rv->arrived;
            rv->arrived_cv.notify_all();
            rv->arrived_cv.wait(lk,
                                [&] { return rv->arrived >= helpers; });
            ++rv->finished;
            rv->done_cv.notify_all();
        });
    }
    fn();
    std::unique_lock<std::mutex> lk(rv->mutex);
    rv->done_cv.wait(lk, [&] { return rv->finished >= helpers; });
    if (rv->error)
        std::rethrow_exception(rv->error);
}

void
ThreadPool::parallelForIndices(const std::vector<size_t>& indices,
                               const std::function<void(size_t)>& fn)
{
    parallelFor(indices.size(), [&](size_t i) { fn(indices[i]); });
}

int
ThreadPool::defaultThreadCount()
{
    if (const char* env = std::getenv("CLITE_THREADS")) {
        int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? int(hw) : 1;
}

namespace {

std::unique_ptr<ThreadPool>&
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

} // namespace

ThreadPool&
globalPool()
{
    auto& slot = globalPoolSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(ThreadPool::defaultThreadCount());
    return *slot;
}

void
setGlobalThreadCount(int threads)
{
    globalPoolSlot() = std::make_unique<ThreadPool>(threads);
}

} // namespace clite

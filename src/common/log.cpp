#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace clite {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Off: return "off";
    }
    return "?";
}

} // namespace

void
Log::setLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
Log::level()
{
    return g_level.load(std::memory_order_relaxed);
}

bool
Log::enabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(Log::level()) &&
           level != LogLevel::Off;
}

void
Log::write(LogLevel level, const std::string& msg)
{
    if (!enabled(level))
        return;
    std::fprintf(stderr, "[clite:%s] %s\n", levelName(level), msg.c_str());
}

} // namespace clite

/**
 * @file
 * Deterministic pseudo-random number generation for the CLITE library.
 *
 * All stochastic components (measurement noise, discrete-event service
 * times, RAND+/GENETIC search, BO multi-start) draw from clite::Rng so
 * that every experiment is reproducible from a single 64-bit seed. The
 * generator is xoshiro256**, seeded through SplitMix64, both public
 * domain algorithms by Blackman & Vigna.
 */

#ifndef CLITE_COMMON_RNG_H
#define CLITE_COMMON_RNG_H

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"

namespace clite {

/**
 * SplitMix64 generator. Used to expand a single seed into the xoshiro
 * state and to derive independent child seeds for parallel streams.
 */
class SplitMix64
{
  public:
    /** @param seed Initial state; any value (including 0) is valid. */
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next 64-bit value. */
    uint64_t next();

  private:
    uint64_t state_;
};

/**
 * xoshiro256** random number generator with a std::uniform-like sampling
 * interface covering every distribution the library needs.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Smallest value returned by operator(). */
    static constexpr result_type min() { return 0; }
    /** Largest value returned by operator(). */
    static constexpr result_type max() { return ~uint64_t{0}; }

    /** Raw 64-bit draw (UniformRandomBitGenerator interface). */
    result_type operator()() { return next(); }

    /** Raw 64-bit draw. */
    uint64_t next();

    /**
     * Derive an independent child generator. Streams derived with
     * different tags from the same parent are decorrelated.
     *
     * @param tag Distinguishes sibling streams.
     */
    Rng split(uint64_t tag);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). @pre lo <= hi */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal draw (Box-Muller with caching). */
    double normal();

    /** Normal draw with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal draw parameterized by the mean of the *resulting*
     * distribution and the sigma of the underlying normal; convenient
     * for multiplicative measurement noise with unit mean.
     *
     * @param mean Desired mean of the log-normal variate.
     * @param sigma Shape parameter (stddev of log).
     */
    double logNormalMean(double mean, double sigma);

    /** Exponential draw with the given rate (1/mean). @pre rate > 0 */
    double exponential(double rate);

    /** Bernoulli draw. @param p Probability of true, clamped to [0,1]. */
    bool bernoulli(double p);

    /**
     * Sample an index in [0, weights.size()) proportionally to
     * non-negative weights. @pre at least one weight > 0.
     */
    size_t categorical(const std::vector<double>& weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(0, int64_t(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    /** Left-rotate for xoshiro. */
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

// The sampling hot path — raw draws and the distributions the
// discrete-event simulator draws per request — is defined inline so
// callers in other translation units pay no call or spill overhead.
// The expressions are exactly the former out-of-line bodies, so every
// stream is bit-identical to what it was.

inline uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

inline double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

inline double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 in (0,1] so the log is finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    // One sincos() call instead of separate sin/cos: glibc evaluates
    // both through the same argument reduction and polynomial kernels,
    // so the pair is bit-identical to std::sin(theta)/std::cos(theta)
    // (pinned over the Box-Muller domain by tests/common/rng_test.cpp)
    // while sharing the reduction work between the two draws.
    double s, c;
    ::sincos(theta, &s, &c);
    cached_normal_ = r * s;
    has_cached_normal_ = true;
    return r * c;
}

inline double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

inline double
Rng::logNormalMean(double mean, double sigma)
{
    CLITE_CHECK(mean > 0.0, "log-normal mean must be positive, got " << mean);
    // E[exp(N(mu, sigma^2))] = exp(mu + sigma^2/2) == mean.
    double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(normal(mu, sigma));
}

inline double
Rng::exponential(double rate)
{
    CLITE_CHECK(rate > 0.0, "exponential rate must be positive, got "
                                << rate);
    return -std::log(1.0 - uniform()) / rate;
}

} // namespace clite

#endif // CLITE_COMMON_RNG_H

#include "common/arena.h"

#include <algorithm>

#include "common/error.h"

namespace clite {

double*
ScratchArena::doubles(size_t n)
{
    // Round every allocation up to the alignment quantum; chunks start
    // on a new[] boundary (16-byte) and we additionally pad the first
    // allocation of a chunk so all pointers land on 64 bytes.
    const size_t need = (n + kAlignDoubles - 1) / kAlignDoubles *
                        kAlignDoubles;
    while (active_ < chunks_.size()) {
        Chunk& c = chunks_[active_];
        size_t at = (c.used + kAlignDoubles - 1) / kAlignDoubles *
                    kAlignDoubles;
        const size_t head =
            (reinterpret_cast<uintptr_t>(c.data.get()) / sizeof(double)) %
            kAlignDoubles;
        at += (kAlignDoubles - head) % kAlignDoubles;
        if (at + need <= c.cap) {
            c.used = at + need;
            return c.data.get() + at;
        }
        ++active_; // chunk full: spill to the next (or grow below)
    }
    // Grow: a fresh chunk at least doubling the last one.
    size_t cap = chunks_.empty() ? kMinChunk : chunks_.back().cap * 2;
    cap = std::max(cap, need + kAlignDoubles);
    Chunk c;
    c.data = std::make_unique<double[]>(cap);
    c.cap = cap;
    ++grows_;
    chunks_.push_back(std::move(c));
    active_ = chunks_.size() - 1;
    return doubles(n);
}

void
ScratchArena::reserve(size_t n)
{
    CLITE_CHECK(depth_ == 0, "ScratchArena::reserve() inside a Frame");
    if (n == 0)
        return;
    // Already one chunk big enough (incl. alignment padding)? Done.
    if (chunks_.size() == 1 && chunks_[0].cap >= n + kAlignDoubles)
        return;
    size_t cap = std::max(n + kAlignDoubles, capacity());
    cap = std::max(cap, kMinChunk);
    chunks_.clear();
    Chunk c;
    c.data = std::make_unique<double[]>(cap);
    c.cap = cap;
    ++grows_;
    chunks_.push_back(std::move(c));
    active_ = 0;
}

size_t
ScratchArena::capacity() const
{
    size_t total = 0;
    for (const Chunk& c : chunks_)
        total += c.cap;
    return total;
}

void
ScratchArena::coalesce()
{
    // Called only at top level with everything released. If the round
    // spilled into overflow chunks, replace them with one chunk big
    // enough for the whole high-water footprint so the next round is
    // allocation-free. (The replacement itself counts as a grow; the
    // count stabilizes after one round.)
    if (chunks_.size() <= 1)
        return;
    size_t cap = 0;
    for (const Chunk& c : chunks_)
        cap += c.cap;
    chunks_.clear();
    Chunk c;
    c.data = std::make_unique<double[]>(cap);
    c.cap = cap;
    ++grows_;
    chunks_.push_back(std::move(c));
    active_ = 0;
}

ScratchArena::Frame::Frame(ScratchArena& arena) : arena_(arena)
{
    saved_chunk_ = arena_.active_;
    saved_used_ = arena_.chunks_.empty()
                      ? 0
                      : arena_.chunks_[arena_.active_].used;
    ++arena_.depth_;
}

ScratchArena::Frame::~Frame()
{
    // Record the footprint before popping so highWater() reflects the
    // deepest point of the frame tree.
    size_t live = 0;
    for (size_t i = 0; i <= arena_.active_ && i < arena_.chunks_.size();
         ++i)
        live += arena_.chunks_[i].used;
    arena_.high_water_ = std::max(arena_.high_water_, live);

    for (size_t i = saved_chunk_ + 1; i < arena_.chunks_.size(); ++i)
        arena_.chunks_[i].used = 0;
    if (saved_chunk_ < arena_.chunks_.size())
        arena_.chunks_[saved_chunk_].used = saved_used_;
    arena_.active_ = std::min(saved_chunk_,
                              arena_.chunks_.empty()
                                  ? size_t(0)
                                  : arena_.chunks_.size() - 1);
    CLITE_ASSERT(arena_.depth_ > 0, "arena frame underflow");
    --arena_.depth_;
    if (arena_.depth_ == 0)
        arena_.coalesce();
}

ScratchArena&
ScratchArena::forCurrentThread()
{
    thread_local ScratchArena arena;
    return arena;
}

} // namespace clite

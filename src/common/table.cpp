#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace clite {

namespace {

/** Heuristic: does this cell look like a number (for right-alignment)? */
bool
looksNumeric(const std::string& s)
{
    if (s.empty())
        return false;
    size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    bool digit_seen = false;
    for (; i < s.size(); ++i) {
        char c = s[i];
        if (std::isdigit(static_cast<unsigned char>(c)))
            digit_seen = true;
        else if (c != '.' && c != '%' && c != 'e' && c != '-' && c != '+')
            return false;
    }
    return digit_seen;
}

/** CSV-escape a cell if needed. */
std::string
csvCell(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CLITE_CHECK(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    CLITE_CHECK(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, table has "
                           << headers_.size() << " columns");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    if (std::isnan(v))
        return "nan";
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::num(long long v)
{
    return std::to_string(v);
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(100.0 * fraction, precision) + "%";
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            size_t pad = widths[c] - row[c].size();
            if (looksNumeric(row[c]))
                os << std::string(pad, ' ') << row[c];
            else
                os << row[c] << std::string(pad, ' ');
            os << (c + 1 == row.size() ? "" : "  ");
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << csvCell(row[c]) << (c + 1 == row.size() ? "" : ",");
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

void
TextTable::writeCsv(const std::string& path) const
{
    std::ofstream f(path);
    CLITE_CHECK(f.good(), "cannot open CSV output file: " << path);
    printCsv(f);
}

void
printBanner(std::ostream& os, const std::string& title)
{
    os << "\n== " << title << " ==\n\n";
}

} // namespace clite

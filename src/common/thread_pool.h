/**
 * @file
 * Deterministic thread pool for embarrassingly parallel fan-out.
 *
 * The hot spots this pool serves — acquisition-candidate evaluation in
 * the BO loop and the independent workload-mix cells of the figure
 * sweeps — are pure index-addressed maps: task i reads shared immutable
 * state and writes only slot i of a result array. Under that contract
 * the output is a function of the index alone, so results are
 * bit-identical no matter how the OS schedules the workers (and
 * identical to serial execution with threads = 1, the escape hatch).
 * Randomized tasks keep the guarantee by deriving a per-task stream
 * with Rng::split(index) instead of sharing a generator.
 *
 * parallelFor is reentrant: the calling thread participates in the
 * work, so nested calls (a parallel sweep whose cells run a parallel
 * BO loop) complete even when every worker is busy — helper tasks that
 * never get scheduled find the index range exhausted and exit.
 */

#ifndef CLITE_COMMON_THREAD_POOL_H
#define CLITE_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace clite {

/**
 * Fixed-size worker pool executing index-parallel loops.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 1 means fully inline (serial)
     *     execution with no threads spawned. Values < 1 are clamped
     *     to 1.
     */
    explicit ThreadPool(int threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of threads that may run tasks (including the caller). */
    int threadCount() const { return threads_; }

    /**
     * Run fn(0) ... fn(n-1), blocking until every call has returned.
     * The caller participates, so this never deadlocks under nesting.
     * If any call throws, the exception with the lowest index is
     * rethrown after all claimed work finishes.
     *
     * @pre fn(i) writes only state owned by index i (determinism
     *     contract; not checkable, but everything here relies on it).
     */
    void parallelFor(size_t n, const std::function<void(size_t)>& fn);

    /**
     * Range-parallel loop: split [0, n) into contiguous chunks of
     * @p grain indices (last chunk ragged) and run fn(begin, end) one
     * chunk per claimed task. This is the coarse-granularity sibling
     * of parallelFor for loops whose per-index work is too small to
     * amortize a task claim — the batched acquisition rounds and the
     * fleet's lockstep window fan-out. Chunks are claimed in ascending
     * order and the determinism contract is per-chunk: fn must write
     * only state owned by indices in [begin, end).
     */
    void parallelForBlocked(size_t n, size_t grain,
                            const std::function<void(size_t, size_t)>& fn);

    /**
     * Sparse sibling of parallelFor: run fn(indices[0]) ...
     * fn(indices[k-1]) for an arbitrary index set. The async fleet
     * engine uses this to fan out the node steps of one dispatch
     * round — a scattered subset of the node array. Same determinism
     * contract, per element: fn(i) writes only state owned by i
     * (indices must therefore be distinct).
     */
    void parallelForIndices(const std::vector<size_t>& indices,
                            const std::function<void(size_t)>& fn);

    /**
     * Run @p fn exactly once on every worker thread AND the caller —
     * the only way to reach each worker's thread_local state (the
     * pooled DES simulator, the GP scratch arena) for pre-warming,
     * since parallelFor's dynamic claiming makes no per-thread
     * placement promise. A rendezvous barrier inside the submitted
     * jobs forces distinct workers to take them, so every thread runs
     * fn once, no thread twice. Blocks until all calls return.
     *
     * Must not be called concurrently with other pool work (the
     * barrier would pin workers while that work queues behind it);
     * call it from set-up code, e.g. fleet/node construction.
     */
    void broadcast(const std::function<void()>& fn);

    /**
     * Index-parallel map: returns {f(0), ..., f(n-1)}. The result
     * type must be default-constructible.
     */
    template <typename F>
    auto
    parallelMap(size_t n, F&& f) -> std::vector<decltype(f(size_t(0)))>
    {
        std::vector<decltype(f(size_t(0)))> out(n);
        parallelFor(n, [&](size_t i) { out[i] = f(i); });
        return out;
    }

    /**
     * Pool size used by globalPool() when not overridden: the
     * CLITE_THREADS environment variable when set, otherwise the
     * hardware concurrency (at least 1).
     */
    static int defaultThreadCount();

  private:
    /** Enqueue a job for the workers (no-op target when threads_==1). */
    void submit(std::function<void()> job);

    void workerLoop();

    int threads_;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * The process-wide pool shared by the BO loop and the bench sweeps.
 * Lazily constructed with defaultThreadCount() workers.
 */
ThreadPool& globalPool();

/**
 * Replace the global pool with one of @p threads workers (the
 * --threads=N escape hatch of the bench binaries; 1 = serial). Must
 * not be called while another thread is using globalPool().
 */
void setGlobalThreadCount(int threads);

} // namespace clite

#endif // CLITE_COMMON_THREAD_POOL_H

/**
 * @file
 * Error handling primitives for the CLITE library.
 *
 * Follows the gem5 fatal()/panic() split: clite::Error (and the
 * CLITE_THROW / CLITE_CHECK macros) report conditions caused by the
 * caller (bad configuration, invalid arguments) and are recoverable by
 * catching; CLITE_ASSERT guards internal invariants whose violation
 * indicates a bug in the library itself and aborts in debug builds.
 */

#ifndef CLITE_COMMON_ERROR_H
#define CLITE_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace clite {

/**
 * Exception type thrown for all user-facing error conditions in the
 * CLITE library (invalid configuration, inconsistent allocation,
 * unsatisfiable constraints, ...).
 */
class Error : public std::runtime_error
{
  public:
    /**
     * Construct an error with a human-readable message.
     *
     * @param what Description of the failed condition.
     */
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/** Build the "file:line: condition: message" error string. */
std::string formatError(const char* file, int line, const char* cond,
                        const std::string& msg);

/** [[noreturn]] helper that throws clite::Error. */
[[noreturn]] void throwError(const char* file, int line, const char* cond,
                             const std::string& msg);

/** [[noreturn]] helper for internal invariant violations; aborts. */
[[noreturn]] void invariantFailure(const char* file, int line,
                                   const char* cond, const std::string& msg);

} // namespace detail
} // namespace clite

/**
 * Throw clite::Error with a streamed message:
 *   CLITE_THROW("allocation has " << n << " rows, expected " << m);
 */
#define CLITE_THROW(msg_stream)                                            \
    do {                                                                   \
        std::ostringstream clite_oss_;                                     \
        clite_oss_ << msg_stream;                                          \
        ::clite::detail::throwError(__FILE__, __LINE__, nullptr,           \
                                    clite_oss_.str());                     \
    } while (0)

/**
 * Validate a user-facing precondition; throws clite::Error on failure.
 * Analogous to gem5's fatal(): the user did something wrong, the library
 * remains usable.
 */
#define CLITE_CHECK(cond, msg_stream)                                      \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream clite_oss_;                                 \
            clite_oss_ << msg_stream;                                      \
            ::clite::detail::throwError(__FILE__, __LINE__, #cond,         \
                                        clite_oss_.str());                 \
        }                                                                  \
    } while (0)

/**
 * Guard an internal invariant; analogous to gem5's panic(). Violation
 * means a CLITE bug, so this aborts (via invariantFailure) rather than
 * throwing, in all build types.
 */
#define CLITE_ASSERT(cond, msg_stream)                                     \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream clite_oss_;                                 \
            clite_oss_ << msg_stream;                                      \
            ::clite::detail::invariantFailure(__FILE__, __LINE__, #cond,   \
                                              clite_oss_.str());           \
        }                                                                  \
    } while (0)

#endif // CLITE_COMMON_ERROR_H

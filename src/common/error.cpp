#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace clite {
namespace detail {

std::string
formatError(const char* file, int line, const char* cond,
            const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": ";
    if (cond)
        oss << "check `" << cond << "' failed: ";
    oss << msg;
    return oss.str();
}

void
throwError(const char* file, int line, const char* cond,
           const std::string& msg)
{
    throw Error(formatError(file, line, cond, msg));
}

void
invariantFailure(const char* file, int line, const char* cond,
                 const std::string& msg)
{
    std::string full = formatError(file, line, cond, msg);
    std::fprintf(stderr, "CLITE internal invariant violated: %s\n",
                 full.c_str());
    std::abort();
}

} // namespace detail
} // namespace clite

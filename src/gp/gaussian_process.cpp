#include "gp/gaussian_process.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/arena.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "gp/fast_lml.h"
#include "linalg/trsm.h"
#include "opt/nelder_mead.h"

namespace clite {
namespace gp {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

} // namespace

double
Prediction::stddev() const
{
    return std::sqrt(std::max(0.0, variance));
}

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance)
{
    CLITE_CHECK(kernel_ != nullptr, "GaussianProcess needs a kernel");
    CLITE_CHECK(noise_variance_ > 0.0,
                "noise variance must be > 0, got " << noise_variance_);
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      noise_variance_(other.noise_variance_),
      x_(other.x_),
      y_raw_(other.y_raw_),
      y_mean_(other.y_mean_),
      y_scale_(other.y_scale_),
      ys_std_(other.ys_std_),
      pair_sqdist_(other.pair_sqdist_),
      pair_sqdiff_(other.pair_sqdiff_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      warm_hyper_(other.warm_hyper_),
      warm_scale_(other.warm_scale_),
      fit_stats_(other.fit_stats_)
{
    // pair_sqdiff_t_ is deliberately NOT copied: it is a pure
    // transpose of pair_sqdiff_, rebuilt on demand by refit(), and
    // carrying it would nearly double a copy's heap footprint —
    // enough to push the copy-then-extend pattern (snapshots, the
    // incremental-extend benchmark) over the allocator's mmap
    // threshold and turn every extension into fresh page faults.
}

GaussianProcess&
GaussianProcess::operator=(const GaussianProcess& other)
{
    if (this != &other) {
        kernel_ = other.kernel_->clone();
        noise_variance_ = other.noise_variance_;
        x_ = other.x_;
        y_raw_ = other.y_raw_;
        y_mean_ = other.y_mean_;
        y_scale_ = other.y_scale_;
        ys_std_ = other.ys_std_;
        pair_sqdist_ = other.pair_sqdist_;
        pair_sqdiff_ = other.pair_sqdiff_;
        pair_sqdiff_t_.clear();
        sqdiff_t_valid_ = false;
        chol_ = other.chol_;
        alpha_ = other.alpha_;
        warm_hyper_ = other.warm_hyper_;
        warm_scale_ = other.warm_scale_;
        fit_stats_ = other.fit_stats_;
    }
    return *this;
}

void
GaussianProcess::fit(const std::vector<linalg::Vector>& x,
                     const std::vector<double>& y)
{
    CLITE_CHECK(x.size() == y.size(), "fit: " << x.size() << " inputs vs "
                                              << y.size() << " targets");
    CLITE_CHECK(!x.empty(), "fit needs at least one training point");
    for (const auto& xi : x)
        CLITE_CHECK(xi.size() == kernel_->dims(),
                    "fit input of dim " << xi.size() << ", kernel expects "
                                        << kernel_->dims());

    x_ = x;
    y_raw_ = y;
    updateStandardization();
    rebuildDistanceCache();
    refit();
}

void
GaussianProcess::addSample(const linalg::Vector& x, double y)
{
    CLITE_CHECK(fitted(), "addSample called before fit");
    CLITE_CHECK(x.size() == kernel_->dims(),
                "addSample input of dim " << x.size()
                                          << ", kernel expects "
                                          << kernel_->dims());
    const size_t n = x_.size();
    appendDistanceCache(x);
    x_.push_back(x);
    y_raw_.push_back(y);
    updateStandardization();

    // Kernel row of the new point against the existing set, from the
    // just-appended cache entries so the values match what refit()
    // would compute for the same pairs.
    const std::vector<double> inv_l2 = inverseSquaredLengthscales();
    const size_t base = n * (n - 1) / 2;
    linalg::Vector krow(n);
    for (size_t j = 0; j < n; ++j)
        krow[j] = kernel_->fromScaledDistance(
            cachedScaledDistance(base + j, inv_l2));
    const double c =
        kernel_->fromScaledDistance(0.0) + noise_variance_;

    if (chol_->appendRow(krow, c)) {
        // Standardization shifts with the new target, so α must be
        // recomputed in full — but through the cached factor: O(n²).
        alpha_ = ys_std_;
        chol_->solveInPlace(alpha_);
    } else {
        // Nearly duplicate point: the appended pivot went non-positive.
        // Refactor from scratch so the jitter search can engage.
        refit();
    }
}

void
GaussianProcess::fitIncremental(const std::vector<linalg::Vector>& x,
                                const std::vector<double>& y)
{
    CLITE_CHECK(x.size() == y.size(), "fitIncremental: " << x.size()
                                          << " inputs vs " << y.size()
                                          << " targets");
    CLITE_CHECK(!x.empty(), "fitIncremental needs at least one point");
    if (!fitted() || x.size() < x_.size()) {
        fit(x, y);
        return;
    }
    for (size_t i = 0; i < x_.size(); ++i) {
        if (x[i] != x_[i] || y[i] != y_raw_[i]) {
            // The shared prefix diverged (a sample was removed,
            // reordered, or re-scored — e.g. quarantined by the fault
            // path): incremental extension would silently keep the
            // dropped point in the factor, so refit from scratch.
            fit(x, y);
            return;
        }
    }
    for (size_t i = x_.size(); i < x.size(); ++i)
        addSample(x[i], y[i]);
}

void
GaussianProcess::updateStandardization()
{
    // Standardize targets; guard against a constant target vector.
    double mean = 0.0;
    for (double v : y_raw_)
        mean += v;
    mean /= double(y_raw_.size());
    double var = 0.0;
    for (double v : y_raw_)
        var += (v - mean) * (v - mean);
    var /= double(y_raw_.size());
    y_mean_ = mean;
    y_scale_ = (var > 1e-12) ? std::sqrt(var) : 1.0;

    ys_std_.resize(y_raw_.size());
    for (size_t i = 0; i < y_raw_.size(); ++i)
        ys_std_[i] = standardize(y_raw_[i]);
}

void
GaussianProcess::rebuildDistanceCache()
{
    const size_t n = x_.size();
    const size_t d = kernel_->dims();
    const bool ard = !kernel_->isotropic();
    pair_sqdist_.clear();
    pair_sqdist_.reserve(n * (n - 1) / 2);
    pair_sqdiff_.clear();
    if (ard)
        pair_sqdiff_.reserve(n * (n - 1) / 2 * d);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < i; ++j) {
            double sum = 0.0;
            for (size_t k = 0; k < d; ++k) {
                double diff = x_[i][k] - x_[j][k];
                double sq = diff * diff;
                sum += sq;
                if (ard)
                    pair_sqdiff_.push_back(sq);
            }
            pair_sqdist_.push_back(sum);
        }
    }
    sqdiff_t_valid_ = false;
}

void
GaussianProcess::appendDistanceCache(const linalg::Vector& x)
{
    const size_t d = kernel_->dims();
    const bool ard = !kernel_->isotropic();
    for (const auto& xj : x_) {
        double sum = 0.0;
        for (size_t k = 0; k < d; ++k) {
            double diff = x[k] - xj[k];
            double sq = diff * diff;
            sum += sq;
            if (ard)
                pair_sqdiff_.push_back(sq);
        }
        pair_sqdist_.push_back(sum);
    }
    sqdiff_t_valid_ = false;
}

std::vector<double>
GaussianProcess::inverseSquaredLengthscales() const
{
    const size_t d = kernel_->dims();
    std::vector<double> inv_l2(d);
    for (size_t k = 0; k < d; ++k) {
        double l = kernel_->lengthscale(k);
        inv_l2[k] = 1.0 / (l * l);
    }
    return inv_l2;
}

double
GaussianProcess::cachedScaledDistance(
    size_t pair, const std::vector<double>& inv_l2) const
{
    double r2;
    if (kernel_->isotropic()) {
        r2 = pair_sqdist_[pair] * inv_l2[0];
    } else {
        const size_t d = inv_l2.size();
        const double* sq = &pair_sqdiff_[pair * d];
        r2 = 0.0;
        for (size_t k = 0; k < d; ++k)
            r2 += sq[k] * inv_l2[k];
    }
    return std::sqrt(r2);
}

void
GaussianProcess::refit()
{
    const size_t n = x_.size();
    const std::vector<double> inv_l2 = inverseSquaredLengthscales();
    const double diag =
        kernel_->fromScaledDistance(0.0) + noise_variance_;
    gram_.reshape(n, n);
    // Batched Gram rebuild: scaled distances for every cached pair
    // (the exact arithmetic of cachedScaledDistance), then one
    // fromScaledDistanceBatch call — whose per-element loop is
    // documented bit-identical to the scalar fromScaledDistance —
    // then a scatter into the symmetric matrix. Same values as the
    // per-pair scalar loop, one virtual call instead of n(n-1)/2.
    const size_t npairs = n * (n - 1) / 2;
    ScratchArena& arena = ScratchArena::forCurrentThread();
    ScratchArena::Frame frame(arena);
    double* r = arena.doubles(npairs);
    double* kv = arena.doubles(npairs);
    if (kernel_->isotropic()) {
        const double inv = inv_l2[0];
        for (size_t pair = 0; pair < npairs; ++pair)
            r[pair] = std::sqrt(pair_sqdist_[pair] * inv);
    } else {
        // k-ascending accumulation across the dimension-major
        // transpose: each r[pair] sums the same terms in the same
        // order as cachedScaledDistance, but the inner loop runs
        // across independent pairs instead of one pair's chained
        // adds.
        const size_t d = inv_l2.size();
        if (!sqdiff_t_valid_) {
            pair_sqdiff_t_.resize(npairs * d);
            for (size_t pair = 0; pair < npairs; ++pair)
                for (size_t k = 0; k < d; ++k)
                    pair_sqdiff_t_[k * npairs + pair] =
                        pair_sqdiff_[pair * d + k];
            sqdiff_t_valid_ = true;
        }
        for (size_t pair = 0; pair < npairs; ++pair)
            r[pair] = 0.0;
        for (size_t k = 0; k < d; ++k) {
            const double* col = pair_sqdiff_t_.data() + k * npairs;
            const double iv = inv_l2[k];
            for (size_t pair = 0; pair < npairs; ++pair)
                r[pair] += col[pair] * iv;
        }
        for (size_t pair = 0; pair < npairs; ++pair)
            r[pair] = std::sqrt(r[pair]);
    }
    kernel_->fromScaledDistanceBatch(r, kv, npairs);
    size_t pair = 0;
    for (size_t i = 0; i < n; ++i) {
        gram_(i, i) = diag;
        for (size_t j = 0; j < i; ++j, ++pair) {
            gram_(i, j) = kv[pair];
            gram_(j, i) = kv[pair];
        }
    }
    // Refactor into the existing factor storage (allocation-free in
    // steady state — the hyper-fit probe loop lives here). A failed
    // factorization restores the "not fitted" invariant the emplace
    // path used to provide before rethrowing.
    if (chol_.has_value()) {
        try {
            chol_->refactor(gram_);
        } catch (...) {
            chol_.reset();
            throw;
        }
    } else {
        chol_.emplace(gram_);
    }
    alpha_ = ys_std_;
    chol_->solveInPlace(alpha_);
}

double
GaussianProcess::standardize(double y) const
{
    return (y - y_mean_) / y_scale_;
}

double
GaussianProcess::destandardizeMean(double m) const
{
    return m * y_scale_ + y_mean_;
}

double
GaussianProcess::destandardizeVar(double v) const
{
    return v * y_scale_ * y_scale_;
}

Prediction
GaussianProcess::predict(const linalg::Vector& x) const
{
    CLITE_CHECK(fitted(), "predict called before fit");
    CLITE_CHECK(x.size() == kernel_->dims(),
                "predict input of dim " << x.size() << ", kernel expects "
                                        << kernel_->dims());
    const size_t n = x_.size();
    linalg::Vector kstar(n);
    for (size_t i = 0; i < n; ++i)
        kstar[i] = (*kernel_)(x, x_[i]);

    double mean_s = linalg::dot(kstar, alpha_);
    linalg::Vector v = chol_->solveLower(kstar);
    double var_s = (*kernel_)(x, x) - linalg::dot(v, v);
    var_s = std::max(0.0, var_s);

    Prediction p;
    p.mean = destandardizeMean(mean_s);
    p.variance = destandardizeVar(var_s);
    return p;
}

void
GaussianProcess::predictBatch(const std::vector<linalg::Vector>& xs,
                              size_t begin, size_t count, double* means,
                              double* variances) const
{
    CLITE_CHECK(fitted(), "predictBatch called before fit");
    CLITE_CHECK(begin <= xs.size() && count <= xs.size() - begin,
                "predictBatch range [" << begin << ", " << begin + count
                                       << ") out of " << xs.size());
    if (count == 0)
        return;
    const size_t n = x_.size();
    const size_t d = kernel_->dims();
    for (size_t c = 0; c < count; ++c)
        CLITE_CHECK(xs[begin + c].size() == d,
                    "predictBatch input of dim " << xs[begin + c].size()
                                                 << ", kernel expects "
                                                 << d);

    ScratchArena& arena = ScratchArena::forCurrentThread();
    ScratchArena::Frame frame(arena);

    // Structure-of-arrays pack of the candidate block: dimension-major
    // so the panel fill's inner loops run contiguously across
    // candidates.
    double* soa = arena.doubles(d * count);
    for (size_t c = 0; c < count; ++c) {
        const double* x = xs[begin + c].data();
        for (size_t k = 0; k < d; ++k)
            soa[k * count + c] = x[k];
    }
    // Length-scales materialized once per block — the scalar path
    // recomputes exp(log ℓ_d) per pair; exp is deterministic, so the
    // hoisted values divide out identically.
    double* ls = arena.doubles(d);
    for (size_t k = 0; k < d; ++k)
        ls[k] = kernel_->lengthscale(k);

    // Cross-covariance panel: row i holds k(cand_c, x_i) for all c.
    double* panel = arena.doubles(n * count);
    double* r_scratch = arena.doubles(count);
    for (size_t i = 0; i < n; ++i)
        kernel_->crossCovarianceRow(soa, count, x_[i].data(), ls,
                                    r_scratch, panel + i * count);

    // Posterior mean: k*ᵀα, i ascending exactly like linalg::dot.
    double* mean_s = arena.doubles(count);
    linalg::panelDotRows(panel, n, count, alpha_.data(), mean_s);

    // One blocked TRSM replaces `count` forward substitutions.
    linalg::solveLowerPanel(chol_->lowerData(), chol_->stride(),
                            chol_->size(), panel, count);

    // Posterior variance: k(x,x) − ‖L⁻¹k*‖² per candidate. The scalar
    // path evaluates the kernel at distance 0 for the diagonal; that
    // is one deterministic value, hoisted.
    double* vv = arena.doubles(count);
    linalg::panelColumnSquaredNorms(panel, n, count, vv);
    const double diag = kernel_->fromScaledDistance(0.0);
    for (size_t c = 0; c < count; ++c) {
        double var_s = diag - vv[c];
        var_s = std::max(0.0, var_s);
        means[c] = destandardizeMean(mean_s[c]);
        variances[c] = destandardizeVar(var_s);
    }
}

std::vector<Prediction>
GaussianProcess::predictBatch(const std::vector<linalg::Vector>& xs) const
{
    std::vector<Prediction> out(xs.size());
    if (xs.empty())
        return out;
    ScratchArena& arena = ScratchArena::forCurrentThread();
    ScratchArena::Frame frame(arena);
    double* means = arena.doubles(xs.size());
    double* vars = arena.doubles(xs.size());
    predictBatch(xs, 0, xs.size(), means, vars);
    for (size_t i = 0; i < xs.size(); ++i) {
        out[i].mean = means[i];
        out[i].variance = vars[i];
    }
    return out;
}

double
GaussianProcess::logMarginalLikelihood() const
{
    CLITE_CHECK(fitted(), "logMarginalLikelihood called before fit");
    const size_t n = x_.size();
    double data_fit = -0.5 * linalg::dot(ys_std_, alpha_);
    double complexity = -0.5 * chol_->logDet();
    double norm = -0.5 * double(n) * kLog2Pi;
    return data_fit + complexity + norm;
}

void
GaussianProcess::seedWarmStart(std::vector<double> hyper, double scale)
{
    warm_hyper_ = std::move(hyper);
    warm_scale_ = scale;
}

void
GaussianProcess::clearWarmStart()
{
    warm_hyper_.clear();
    warm_scale_ = 0.0;
}

std::vector<size_t>
GaussianProcess::probeSubsetIndices(size_t m) const
{
    const size_t n = x_.size();
    CLITE_ASSERT(m >= 2 && m < n, "probe subset must be a strict subset");

    // Stratify by standardized score: sort sample indices by (score,
    // index) — the index tie-break makes the order, and therefore the
    // subset, independent of how the scores were produced — then take
    // one member per stratum. The extreme strata contain the best and
    // worst observed configurations, so the incumbent region always
    // survives the thinning.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         if (ys_std_[a] != ys_std_[b])
                             return ys_std_[a] < ys_std_[b];
                         return a < b;
                     });

    // Seed-stable pick inside each stratum: the choice depends only on
    // (n, stratum), never on an external RNG stream, so the same
    // history yields the same subset on every thread count and every
    // rerun.
    std::vector<size_t> subset(m);
    for (size_t s = 0; s < m; ++s) {
        const size_t lo = s * n / m;
        const size_t hi = (s + 1) * n / m;
        SplitMix64 pick(0x5be5eedd15b5e7a1ULL ^ (uint64_t(n) << 20) ^ s);
        subset[s] = order[lo + pick.next() % (hi - lo)];
    }
    std::sort(subset.begin(), subset.end());
    return subset;
}

double
GaussianProcess::optimizeHyperparameters(Rng& rng,
                                         const GpFitOptions& options)
{
    CLITE_CHECK(fitted(), "optimizeHyperparameters called before fit");
    fit_stats_ = GpFitStats{};

    const bool fit_noise = options.fit_noise;
    std::vector<double> start = kernel_->logParams();
    if (fit_noise)
        start.push_back(std::log(noise_variance_));

    auto objective = [&](const std::vector<double>& p) {
        // Reject absurd parameter magnitudes to keep Cholesky healthy.
        for (double v : p)
            if (!std::isfinite(v) || std::fabs(v) > 12.0)
                return 1e12;
        std::vector<double> kp(p.begin(),
                               p.begin() + long(kernel_->numParams()));
        kernel_->setLogParams(kp);
        if (fit_noise)
            noise_variance_ = std::exp(p.back());
        try {
            refit();
        } catch (const Error&) {
            return 1e12;
        }
        return -logMarginalLikelihood();
    };

    opt::NmOptions nm;
    nm.max_iters = options.max_iters;

    // Restart starting points up front, perturbations drawn from the
    // caller's stream in exactly the order the former serial loop
    // drew them (nothing else consumes the generator in between), so
    // the stream position after this call is unchanged.
    std::vector<std::vector<double>> starts;
    starts.reserve(size_t(options.restarts) + 1);
    starts.push_back(start);
    for (int restart = 0; restart < options.restarts; ++restart) {
        std::vector<double> s = start;
        for (double& v : s)
            v += rng.uniform(-options.log_param_range,
                             options.log_param_range);
        starts.push_back(std::move(s));
    }

    // Probe tier: the vectorized LML evaluator when the kernel has a
    // fast radial form (every kernel the library ships), the exact
    // objective otherwise. Fast probes agree with the exact value to
    // roundoff but are not bit-identical; only the winner is
    // re-evaluated — and the model refit — through the exact path.
    //
    // Above subset_threshold a third tier engages: probes rank
    // hyper-vectors by the LML of a deterministic score-stratified
    // subset (O(m³) per evaluation instead of O(n³)), the persisted
    // warm simplex is probed first and the restarts run only when it
    // regresses, and the winner must finally beat the current exact
    // LML before the refit is kept. That branch returns on its own
    // below; everything past it is the pre-subset code path, byte
    // identical for small histories.
    std::vector<opt::NmResult> runs;
    const std::optional<RadialForm> form = radialFormFor(kernel_->name());
    const size_t n_hist = x_.size();
    const size_t m_sub = std::min(options.subset_size, n_hist);
    const bool subset_tier = form.has_value() &&
                             options.subset_threshold > 0 &&
                             n_hist >= options.subset_threshold &&
                             m_sub >= 2 && m_sub < n_hist;
    if (subset_tier) {
        fit_stats_.subset_used = true;

        // Materialize the subset problem: packed pair distances pulled
        // from the full-set cache at pair index i(i-1)/2+j, targets
        // standardized by the FULL set (ranking only — absolute level
        // does not matter, relative curvature does), and a d×m panel
        // for ARD kernels.
        const std::vector<size_t> sub = probeSubsetIndices(m_sub);
        FastLmlProblem sp;
        sp.n = m_sub;
        sp.dims = kernel_->dims();
        sp.isotropic = kernel_->isotropic();
        sp.fit_noise = fit_noise;
        sp.form = *form;
        sp.noise_variance = noise_variance_;
        std::vector<double> sub_sqd(m_sub * (m_sub - 1) / 2);
        {
            size_t pair = 0;
            for (size_t i = 0; i < m_sub; ++i)
                for (size_t j = 0; j < i; ++j, ++pair) {
                    const size_t gi = sub[i], gj = sub[j];
                    sub_sqd[pair] =
                        pair_sqdist_[gi * (gi - 1) / 2 + gj];
                }
        }
        sp.pair_sqdist = sub_sqd.data();
        std::vector<double> sub_ys(m_sub);
        for (size_t i = 0; i < m_sub; ++i)
            sub_ys[i] = ys_std_[sub[i]];
        sp.ys_std = sub_ys.data();
        std::vector<double> sub_xt;
        if (!sp.isotropic) {
            const size_t d = sp.dims;
            sub_xt.resize(d * m_sub);
            for (size_t i = 0; i < m_sub; ++i)
                for (size_t k = 0; k < d; ++k)
                    sub_xt[k * m_sub + i] = x_[sub[i]][k];
            sp.x_t = sub_xt.data();
        }

        auto subset_obj = [&sp](const std::vector<double>& p) {
            static thread_local FastLmlScratch scratch;
            return fastNegLogMarginal(sp, p.data(), p.size(), scratch);
        };

        // Warm probe first: one Nelder-Mead descent from the last
        // winning hyper-vector, simplex sized to the move that won it.
        // It wins when it beats the subset objective at the current
        // parameters; only a regression spends the restart budget.
        // (The restart perturbations were already drawn above either
        // way, so the caller's stream position never depends on which
        // branch ran.)
        std::vector<double> cand = start;
        double cand_val;
        bool have_cand = false;
        const double base = subset_obj(start);
        fit_stats_.probe_evals += 1;
        if (warm_hyper_.size() == start.size()) {
            opt::NmOptions wnm = nm;
            wnm.initial_scale =
                std::clamp(warm_scale_, 0.05, nm.initial_scale);
            opt::NmResult wr =
                opt::nelderMeadMinimize(subset_obj, warm_hyper_, wnm);
            fit_stats_.probe_evals += uint64_t(wr.evaluations);
            if (wr.value < base) {
                fit_stats_.warm_hit = true;
                cand = std::move(wr.x);
                cand_val = wr.value;
                have_cand = true;
            }
        }
        if (!have_cand) {
            auto make_subset_objective = [&sp](size_t) {
                return std::function<double(const std::vector<double>&)>(
                    [&sp](const std::vector<double>& p) {
                        static thread_local FastLmlScratch scratch;
                        return fastNegLogMarginal(sp, p.data(), p.size(),
                                                  scratch);
                    });
            };
            runs = opt::nelderMeadMultiStart(make_subset_objective,
                                             starts, nm, &globalPool());
            cand_val = runs[0].f0;
            for (const opt::NmResult& r : runs) {
                fit_stats_.probe_evals += uint64_t(r.evaluations);
                if (r.value < cand_val) {
                    cand_val = r.value;
                    cand = r.x;
                    have_cand = true;
                }
            }
        }
        if (!have_cand) {
            // Nothing beat the current parameters even on the subset;
            // the model state already reflects them (subset probes are
            // stateless), so keep the fit as is.
            return logMarginalLikelihood();
        }

        // Full-fidelity guard: the subset ranked the candidate above
        // the incumbent, but only the exact objective decides. A
        // candidate that regresses the exact LML is discarded and the
        // entry parameters re-applied (the probes never touched model
        // state, but objective() below does, so the restore must run
        // through it too).
        const double entry_lml = logMarginalLikelihood();
        const double final_neg = objective(cand);
        if (!std::isfinite(final_neg) || -final_neg <= entry_lml) {
            const double restored = objective(start);
            CLITE_ASSERT(std::isfinite(restored),
                         "entry hyper-parameters no longer evaluable");
            // The persisted warm vector just lost at full fidelity;
            // drop it so the next refit spends restarts again instead
            // of trusting a stale simplex.
            clearWarmStart();
            return -restored;
        }
        fit_stats_.improved = true;
        double step = 0.0;
        for (size_t i = 0; i < cand.size(); ++i)
            step = std::max(step, std::fabs(cand[i] - start[i]));
        warm_hyper_ = cand;
        warm_scale_ = std::clamp(step, 0.05, 0.5);
        return -final_neg;
    }
    if (form.has_value()) {
        FastLmlProblem problem;
        problem.n = x_.size();
        problem.dims = kernel_->dims();
        problem.isotropic = kernel_->isotropic();
        problem.fit_noise = fit_noise;
        problem.form = *form;
        problem.noise_variance = noise_variance_;
        problem.pair_sqdist = pair_sqdist_.data();
        problem.ys_std = ys_std_.data();
        // ARD: dimension-major copy of the training panel, built once
        // per search — each probe contracts length-scales against this
        // d×n block via the weighted-Gram identity.
        std::vector<double> x_t;
        if (!problem.isotropic) {
            const size_t d = problem.dims;
            const size_t n = x_.size();
            x_t.resize(d * n);
            for (size_t i = 0; i < n; ++i)
                for (size_t k = 0; k < d; ++k)
                    x_t[k * n + i] = x_[i][k];
            problem.x_t = x_t.data();
        }

        // The probes are pure (per-thread scratch, shared immutable
        // problem), so the restarts fan out across the pool; results
        // come back in start order regardless of thread count. Scratch
        // is thread-local — a run only ever evaluates on the thread
        // that claimed it, and scratch contents never affect values —
        // so repeated searches are allocation-free in steady state.
        auto make_objective = [&problem](size_t) {
            return std::function<double(const std::vector<double>&)>(
                [&problem](const std::vector<double>& p) {
                    static thread_local FastLmlScratch scratch;
                    return fastNegLogMarginal(problem, p.data(),
                                              p.size(), scratch);
                });
        };
        runs = opt::nelderMeadMultiStart(make_objective, starts, nm,
                                         &globalPool());
    } else {
        runs.reserve(starts.size());
        for (const auto& s : starts)
            runs.push_back(opt::nelderMeadMinimize(objective, s, nm));
    }

    // Winner by strict improvement in start order — the tie-break the
    // serial loop applied. The baseline to beat is the objective at
    // the unperturbed start, which run 0 already evaluated as vertex 0
    // of its initial simplex (runs are never empty: starts[0] = start).
    std::vector<double> best_p = start;
    double best_neg = runs[0].f0;
    bool improved = false;
    for (const opt::NmResult& r : runs) {
        fit_stats_.probe_evals += uint64_t(r.evaluations);
        if (r.value < best_neg) {
            best_neg = r.value;
            best_p = r.x;
            improved = true;
        }
    }
    fit_stats_.improved = improved;

    // When no run strictly beat the start, the winner IS the current
    // hyper-parameters — and on the fast-probe path the model state
    // still reflects them (probes are stateless, and the class
    // invariant keeps chol_/α consistent with the current kernel at
    // entry), so re-applying them would rebuild byte-identical state.
    // Skip the O(n³) refit and report the current fit's likelihood.
    // The exact fallback path cannot skip: its probes refit in place,
    // so the model must be restored to the winner regardless.
    if (!improved && form.has_value())
        return logMarginalLikelihood();

    // Apply the winner and leave the model refit with it.
    double final_neg = objective(best_p);
    CLITE_ASSERT(std::isfinite(final_neg),
                 "best hyper-parameters no longer evaluable");
    return -final_neg;
}

} // namespace gp
} // namespace clite

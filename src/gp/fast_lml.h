/**
 * @file
 * Vectorized negative-log-marginal-likelihood evaluator for the
 * hyper-parameter search.
 *
 * GaussianProcess::optimizeHyperparameters spends essentially all of
 * its time evaluating the LML at probe points: rebuild the Gram from
 * the cached pairwise distances, factor it, solve for alpha, sum the
 * log-determinant. The exact path does that through the kernel's
 * virtual scalar interface and the shared Cholesky with its
 * strict-order dot products — bit-reproducible, but ~5x slower than
 * the arithmetic requires. This module is the probe tier: a
 * self-contained evaluator over the same cached distances that
 *
 *  - inlines the three radial forms the library ships (Matérn 5/2,
 *    Matérn 3/2, RBF) with a branchless polynomial exp over the
 *    negative domain,
 *  - factors a packed lower-triangular Gram with fixed 4-accumulator
 *    dot products, and
 *  - computes the data-fit term through one forward solve
 *    (y'K⁻¹y = z'z with z = L⁻¹y) instead of a full solve.
 *
 * The returned value agrees with the exact objective to roundoff
 * (~1e-12 relative) but is NOT bit-identical to it: the dot products
 * reassociate and exp is a faithful polynomial rather than libm. The
 * search therefore uses this tier for every Nelder-Mead probe and
 * re-evaluates only the winner through the exact objective, so the
 * fitted model state is produced by exactly the code path fit() uses.
 *
 * Rejection semantics mirror the exact objective so the search walks
 * the same effective domain: any |log-param| > 12 or non-finite value
 * scores 1e12, and a Gram that stays non-positive-definite through the
 * exact path's jitter ladder (0, then 1e-10 … 1e-2 decades) also
 * scores 1e12.
 *
 * Two identical implementations are compiled, one for the build's
 * baseline ISA and one for AVX2+FMA (#pragma GCC target), dispatched
 * at runtime. All arithmetic is element-wise, compiler contraction is
 * disabled for this translation unit (-ffp-contract=off), and the hot
 * loops fuse through an explicit correctly-rounded fma helper (one
 * vfmaddpd in the wide variant, libm fma in the baseline — the same
 * IEEE value either way), so the variants are bit-identical to each
 * other — pinned by tests/gp/fast_lml_test.cpp — and the probe values
 * do not depend on the host CPU.
 */

#ifndef CLITE_GP_FAST_LML_H
#define CLITE_GP_FAST_LML_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace clite {
namespace gp {

/** Radial kernel forms with a fast-tier implementation. */
enum class RadialForm
{
    Matern52,
    Matern32,
    Rbf,
};

/**
 * Fast-tier form for a Kernel::name(), or nullopt when the kernel is
 * unknown to this module (the caller falls back to exact probes).
 */
std::optional<RadialForm> radialFormFor(const std::string& kernel_name);

/**
 * One hyper-fit problem: everything the evaluator reads besides the
 * probe point. Pointers are borrowed and must outlive the evaluator
 * calls; all referenced data is immutable during the search, so one
 * problem can serve concurrent evaluations (each with its own
 * scratch).
 */
struct FastLmlProblem
{
    size_t n = 0;           ///< Training points.
    size_t dims = 0;        ///< Input dimensions.
    bool isotropic = true;  ///< One shared length-scale vs ARD.
    bool fit_noise = true;  ///< Last log-param is log noise variance.
    RadialForm form = RadialForm::Matern52;
    /** Noise variance used when !fit_noise. */
    double noise_variance = 0.0;
    /** Pairwise squared distances, pair (i, j<i) at i(i-1)/2 + j. */
    const double* pair_sqdist = nullptr;
    /**
     * ARD only: training inputs, dimension-major — entry [k * n + i].
     * The per-probe scaled distances come from the weighted-Gram
     * identity r²_ij = q_i + q_j − 2 Σ_k w_k x_ik x_jk over this d×n
     * panel (L1-resident) instead of an O(n²d) difference table.
     */
    const double* x_t = nullptr;
    /** Standardized targets (n values). */
    const double* ys_std = nullptr;
};

/**
 * Reusable per-thread workspace; evaluations are allocation-free once
 * the buffers have grown to the problem size.
 */
struct FastLmlScratch
{
    std::vector<double> r2;     ///< Scaled squared distances per pair.
    std::vector<double> kv;     ///< Kernel values per pair.
    std::vector<double> factor; ///< Packed lower-triangular L.
    std::vector<double> z;      ///< Forward-solve vector.
    std::vector<double> inv_l2; ///< Per-dimension 1/ℓ² (ARD).
    std::vector<double> q;      ///< Weighted squared norms (ARD).
    std::vector<double> wa;     ///< Weighted-row block (ARD Gram).
    std::vector<double> invd;   ///< Reciprocal factor diagonal.
    std::vector<double> panel;  ///< Transposed 4-row factor panel.
};

/**
 * Negative log marginal likelihood of @p problem at log-params
 * @p p[0..np) (kernel params first, then log noise variance when
 * fit_noise). Dispatches to the widest implementation the host
 * supports; all variants return bit-identical values.
 */
double fastNegLogMarginal(const FastLmlProblem& problem, const double* p,
                          size_t np, FastLmlScratch& scratch);

namespace detail {

/** Baseline-ISA variant (exposed for the equivalence test). */
double fastNegLogMarginalBase(const FastLmlProblem& problem,
                              const double* p, size_t np,
                              FastLmlScratch& scratch);

/** AVX2+FMA variant (valid to call only when avx2Supported()). */
double fastNegLogMarginalAvx2(const FastLmlProblem& problem,
                              const double* p, size_t np,
                              FastLmlScratch& scratch);

/** True when the host executes AVX2 and FMA. */
bool avx2Supported();

} // namespace detail

} // namespace gp
} // namespace clite

#endif // CLITE_GP_FAST_LML_H

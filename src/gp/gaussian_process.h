/**
 * @file
 * Gaussian-process regression — CLITE's surrogate model (Sec. 4).
 *
 * A GP with a Matérn kernel is fit to the (configuration, score) pairs
 * sampled so far; its posterior mean μ(x) and standard deviation σ(x)
 * feed the Expected Improvement acquisition (Fig. 3 of the paper).
 * The implementation follows Rasmussen & Williams Algorithm 2.1:
 * Cholesky of K + σ_n² I, α = K⁻¹y, predictive mean kᵀα and variance
 * k(x,x) − ‖L⁻¹k‖². Targets are standardized internally so kernel
 * hyper-parameter defaults are scale-free. The paper deliberately keeps
 * the sample count small (tens), so dense O(n³) algebra is the right
 * tool — no sparse approximations (Sec. 4 discusses why CLITE avoids
 * them: they degrade uncertainty estimates).
 */

#ifndef CLITE_GP_GAUSSIAN_PROCESS_H
#define CLITE_GP_GAUSSIAN_PROCESS_H

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "gp/kernel.h"
#include "linalg/cholesky.h"

namespace clite {
namespace gp {

/** Posterior prediction at one point. */
struct Prediction
{
    double mean = 0.0;   ///< Posterior mean μ(x).
    double variance = 0.0; ///< Posterior variance σ²(x) (>= 0).

    /** Posterior standard deviation σ(x). */
    double stddev() const;
};

/** Options for hyper-parameter fitting. */
struct GpFitOptions
{
    int restarts = 2;          ///< Extra random restarts beyond current.
    int max_iters = 80;        ///< Nelder-Mead iterations per restart.
    double log_param_range = 2.0; ///< Restart log-param perturbation.
    bool fit_noise = true;     ///< Also optimize the noise variance.
};

/**
 * Gaussian-process regressor.
 */
class GaussianProcess
{
  public:
    /**
     * @param kernel Covariance kernel (owned).
     * @param noise_variance Observation noise σ_n² (> 0).
     */
    GaussianProcess(std::unique_ptr<Kernel> kernel,
                    double noise_variance = 1e-4);

    GaussianProcess(const GaussianProcess& other);
    GaussianProcess& operator=(const GaussianProcess& other);
    GaussianProcess(GaussianProcess&&) = default;
    GaussianProcess& operator=(GaussianProcess&&) = default;

    /**
     * Fit to training data (replaces any previous data).
     *
     * @param x Training inputs, all of kernel().dims() length.
     * @param y Training targets, same length as x.
     */
    void fit(const std::vector<linalg::Vector>& x,
             const std::vector<double>& y);

    /** True once fit() has been called with at least one point. */
    bool fitted() const { return chol_.has_value(); }

    /** Number of training points. */
    size_t sampleCount() const { return x_.size(); }

    /** The kernel in use. */
    const Kernel& kernel() const { return *kernel_; }

    /** Observation noise variance. */
    double noiseVariance() const { return noise_variance_; }

    /**
     * Posterior prediction at @p x.
     * @pre fitted()
     */
    Prediction predict(const linalg::Vector& x) const;

    /**
     * Log marginal likelihood of the current data under the current
     * hyper-parameters. @pre fitted()
     */
    double logMarginalLikelihood() const;

    /**
     * Optimize kernel (and optionally noise) hyper-parameters by
     * maximizing the log marginal likelihood with Nelder-Mead plus
     * random restarts, then refit.
     *
     * @param rng Source for restart perturbations.
     * @param options Fitting knobs.
     * @return The best log marginal likelihood achieved.
     * @pre fitted()
     */
    double optimizeHyperparameters(Rng& rng,
                                   const GpFitOptions& options = {});

  private:
    /** Rebuild the Cholesky and α for current data + hyper-parameters. */
    void refit();

    /** Standardized-target helpers. */
    double standardize(double y) const;
    double destandardizeMean(double m) const;
    double destandardizeVar(double v) const;

    std::unique_ptr<Kernel> kernel_;
    double noise_variance_;

    std::vector<linalg::Vector> x_;
    std::vector<double> y_raw_;
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;

    std::optional<linalg::Cholesky> chol_;
    linalg::Vector alpha_; // K⁻¹ y (standardized)
};

} // namespace gp
} // namespace clite

#endif // CLITE_GP_GAUSSIAN_PROCESS_H

/**
 * @file
 * Gaussian-process regression — CLITE's surrogate model (Sec. 4).
 *
 * A GP with a Matérn kernel is fit to the (configuration, score) pairs
 * sampled so far; its posterior mean μ(x) and standard deviation σ(x)
 * feed the Expected Improvement acquisition (Fig. 3 of the paper).
 * The implementation follows Rasmussen & Williams Algorithm 2.1:
 * Cholesky of K + σ_n² I, α = K⁻¹y, predictive mean kᵀα and variance
 * k(x,x) − ‖L⁻¹k‖². Targets are standardized internally so kernel
 * hyper-parameter defaults are scale-free.
 *
 * Two structural optimizations keep the online decision loop cheap as
 * the sample set grows (the per-iteration overhead the paper bounds in
 * Sec. 5.2 / Fig. 15):
 *
 *  - **Stationary-distance caching.** All kernels depend on the inputs
 *    only through per-dimension squared differences, which never
 *    change for a fixed training set. fit() precomputes them once;
 *    every refit() under new hyper-parameters — the inner loop of
 *    optimizeHyperparameters — rebuilds the Gram matrix from the cache
 *    plus the kernel's radial profile without re-touching raw inputs.
 *    The standardized target vector is cached the same way.
 *
 *  - **Incremental updates.** addSample() extends the training set by
 *    one point in O(n²) via a Cholesky rank-append instead of the
 *    O(n³) refactorization of a full fit(); fitIncremental() detects
 *    when a proposed training set merely appends to the current one
 *    and takes that path automatically.
 */

#ifndef CLITE_GP_GAUSSIAN_PROCESS_H
#define CLITE_GP_GAUSSIAN_PROCESS_H

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "gp/kernel.h"
#include "linalg/cholesky.h"

namespace clite {
namespace gp {

/** Posterior prediction at one point. */
struct Prediction
{
    double mean = 0.0;   ///< Posterior mean μ(x).
    double variance = 0.0; ///< Posterior variance σ²(x) (>= 0).

    /** Posterior standard deviation σ(x). */
    double stddev() const;
};

/** Options for hyper-parameter fitting. */
struct GpFitOptions
{
    int restarts = 2;          ///< Extra random restarts beyond current.
    int max_iters = 80;        ///< Nelder-Mead iterations per restart.
    double log_param_range = 2.0; ///< Restart log-param perturbation.
    bool fit_noise = true;     ///< Also optimize the noise variance.

    /**
     * History size at which probes switch to the subset tier: above
     * it, Nelder-Mead probes rank hyper-vectors by the LML of a
     * deterministic, score-stratified subset of the training set and
     * only the winner is re-evaluated (and the model refit) through
     * the exact O(n³) objective. Below it the search is byte-identical
     * to the pre-subset implementation. 0 disables the tier.
     */
    size_t subset_threshold = 96;
    /** Subset size used by the probe tier (clamped to n). */
    size_t subset_size = 64;
};

/**
 * What the last optimizeHyperparameters() call actually did — the
 * observability hook behind ControllerResult's refit counters, so
 * cadence/subset regressions show up in printed stats instead of a
 * profiler.
 */
struct GpFitStats
{
    uint64_t probe_evals = 0; ///< Objective evaluations spent on probes.
    bool subset_used = false; ///< Probes ranked on the subset tier.
    bool warm_hit = false;    ///< Warm simplex won; restarts skipped.
    bool improved = false;    ///< Winner strictly beat the start point.
};

/**
 * Gaussian-process regressor.
 */
class GaussianProcess
{
  public:
    /**
     * @param kernel Covariance kernel (owned).
     * @param noise_variance Observation noise σ_n² (> 0).
     */
    GaussianProcess(std::unique_ptr<Kernel> kernel,
                    double noise_variance = 1e-4);

    GaussianProcess(const GaussianProcess& other);
    GaussianProcess& operator=(const GaussianProcess& other);
    GaussianProcess(GaussianProcess&&) = default;
    GaussianProcess& operator=(GaussianProcess&&) = default;

    /**
     * Fit to training data (replaces any previous data). O(n³).
     *
     * @param x Training inputs, all of kernel().dims() length.
     * @param y Training targets, same length as x.
     */
    void fit(const std::vector<linalg::Vector>& x,
             const std::vector<double>& y);

    /**
     * Extend the training set by one observation in O(n²): the
     * distance cache and kernel row grow by one point, the Cholesky
     * factor is rank-appended, and α is recomputed through the cached
     * factor. Numerically equivalent to a full fit() on the extended
     * data (the appended factor matches the batch factor row for row).
     * Falls back to a full refactorization only when the new point is
     * so close to an existing one that the appended pivot loses
     * positivity. Hyper-parameters are left untouched.
     *
     * @pre fitted()
     */
    void addSample(const linalg::Vector& x, double y);

    /**
     * fit() that recognizes pure extensions: when the current training
     * set is an exact prefix of (@p x, @p y), only the new tail is
     * added via addSample() — the O(n²) path. Any other change
     * (reordering, removal, e.g. a sample quarantined by the fault
     * path) triggers a full fit(). Callers that maintain a filtered
     * sample list can therefore call this unconditionally.
     */
    void fitIncremental(const std::vector<linalg::Vector>& x,
                        const std::vector<double>& y);

    /** True once fit() has been called with at least one point. */
    bool fitted() const { return chol_.has_value(); }

    /** Number of training points. */
    size_t sampleCount() const { return x_.size(); }

    /** The kernel in use. */
    const Kernel& kernel() const { return *kernel_; }

    /** Observation noise variance. */
    double noiseVariance() const { return noise_variance_; }

    /**
     * Posterior prediction at @p x. Read-only and safe to call
     * concurrently from multiple threads on the same fitted model
     * (the parallel acquisition path relies on this).
     * @pre fitted()
     */
    Prediction predict(const linalg::Vector& x) const;

    /**
     * Batched posterior: means[i] / variances[i] for the candidates
     * xs[begin .. begin+count). One call evaluates the whole block —
     * the cross-covariance panel is filled row by row from a
     * structure-of-arrays pack of the block (Kernel::
     * crossCovarianceRow), the B triangular solves collapse into one
     * blocked panel substitution (linalg::solveLowerPanel), and the
     * mean/variance reductions run across the panel. Every candidate's
     * accumulation order matches the scalar path exactly, so
     *
     *     predictBatch(xs, b, c, m, v)  ≡  predict(xs[b+i])  ∀i
     *
     * bit for bit (tests/gp/gp_batch_test.cpp pins this across all
     * kernels and ragged block sizes; the %.17g posterior golden stays
     * byte-identical). Workspace comes from the calling thread's
     * ScratchArena, so steady-state rounds are allocation-free, and
     * like predict() this is safe to call concurrently.
     *
     * @pre fitted(); every xs[i] in range has kernel().dims() entries.
     */
    void predictBatch(const std::vector<linalg::Vector>& xs, size_t begin,
                      size_t count, double* means,
                      double* variances) const;

    /** Convenience: batched posterior over all of @p xs. */
    std::vector<Prediction>
    predictBatch(const std::vector<linalg::Vector>& xs) const;

    /**
     * Log marginal likelihood of the current data under the current
     * hyper-parameters. @pre fitted()
     */
    double logMarginalLikelihood() const;

    /**
     * Optimize kernel (and optionally noise) hyper-parameters by
     * maximizing the log marginal likelihood with Nelder-Mead plus
     * random restarts, then refit.
     *
     * @param rng Source for restart perturbations.
     * @param options Fitting knobs.
     * @return The best log marginal likelihood achieved.
     * @pre fitted()
     */
    double optimizeHyperparameters(Rng& rng,
                                   const GpFitOptions& options = {});

    /** Stats of the most recent optimizeHyperparameters() call. */
    const GpFitStats& lastFitStats() const { return fit_stats_; }

    /**
     * Seed (or overwrite) the persisted warm-start hyper-vector the
     * subset tier probes first. Exposed for tests and benchmarks; the
     * production path persists the winner of each refit on its own.
     * Pass the full probe vector (kernel log-params, plus log noise
     * when fitting noise). @p scale is the initial simplex scale of
     * the warm probe.
     */
    void seedWarmStart(std::vector<double> hyper, double scale);

    /** Drop any persisted warm-start state. */
    void clearWarmStart();

  private:
    /** Rebuild the Cholesky and α for current data + hyper-parameters. */
    void refit();

    /** Recompute y_mean_ / y_scale_ / ys_std_ from y_raw_. */
    void updateStandardization();

    /** Rebuild the pairwise squared-difference cache from x_. */
    void rebuildDistanceCache();

    /** Extend the cache with the pairs (x, x_[j]) for all current j. */
    void appendDistanceCache(const linalg::Vector& x);

    /** Per-dimension 1/ℓ_d² under the current kernel parameters. */
    std::vector<double> inverseSquaredLengthscales() const;

    /**
     * The @p m sample indices (ascending) the subset probe tier ranks
     * hyper-vectors on: one seed-stable pick per score stratum.
     */
    std::vector<size_t> probeSubsetIndices(size_t m) const;

    /** Scaled distance of cached pair @p pair given 1/ℓ². */
    double cachedScaledDistance(size_t pair,
                                const std::vector<double>& inv_l2) const;

    /** Standardized-target helpers. */
    double standardize(double y) const;
    double destandardizeMean(double m) const;
    double destandardizeVar(double v) const;

    std::unique_ptr<Kernel> kernel_;
    double noise_variance_;

    std::vector<linalg::Vector> x_;
    std::vector<double> y_raw_;
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;
    linalg::Vector ys_std_; ///< Standardized targets (cached).

    /**
     * Packed lower-triangular pair caches, ordered (i, j<i) with pair
     * index i(i-1)/2 + j. pair_sqdist_ holds Σ_d (x_i − x_j)² (the
     * isotropic fast path); pair_sqdiff_ holds the per-dimension
     * squared differences (ARD mode only — empty when isotropic).
     */
    std::vector<double> pair_sqdist_;
    std::vector<double> pair_sqdiff_;

    /**
     * Lazily-built dimension-major transpose of pair_sqdiff_ (entry
     * [k * npairs + pair]), consumed by refit()'s distance pass: the
     * per-pair accumulation there runs k-ascending across contiguous
     * columns, which is the exact summation order of
     * cachedScaledDistance — same values, but vectorizable across
     * pairs instead of chained through one pair's twelve adds.
     * Invalidated whenever the pair caches change; rebuilt on the next
     * refit() that needs it (the addSample path never does).
     */
    mutable std::vector<double> pair_sqdiff_t_;
    mutable bool sqdiff_t_valid_ = false;

    std::optional<linalg::Cholesky> chol_;
    linalg::Vector alpha_; // K⁻¹ y (standardized)

    /** Gram scratch reused across refits (hyper-fit probes). */
    linalg::Matrix gram_;

    /**
     * Cross-refit warm start: the last winning probe vector and the
     * simplex scale of the move that won it. The next subset-tier
     * search probes from here first and spends its restarts only when
     * that warm probe regresses below the current-parameter baseline.
     * Cleared when the parameter count changes (kernel swap).
     */
    std::vector<double> warm_hyper_;
    double warm_scale_ = 0.0;

    GpFitStats fit_stats_;
};

} // namespace gp
} // namespace clite

#endif // CLITE_GP_GAUSSIAN_PROCESS_H

#include "gp/fast_lml.h"

#include <cmath>
#include <cstdint>

// The generic 32-byte vectors never cross a function boundary that
// survives inlining inside this translation unit, so the "AVX vector
// return without AVX enabled" ABI note does not apply.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace clite {
namespace gp {

namespace detail {

#define CLITE_FAST_LML_NS base_impl
#define CLITE_FAST_LML_FMA 0
#include "gp/fast_lml_impl.h"
#undef CLITE_FAST_LML_NS
#undef CLITE_FAST_LML_FMA

#pragma GCC push_options
#pragma GCC target("avx2,fma")
#define CLITE_FAST_LML_NS avx2_impl
#define CLITE_FAST_LML_FMA 1
#include "gp/fast_lml_impl.h"
#undef CLITE_FAST_LML_NS
#undef CLITE_FAST_LML_FMA
#pragma GCC pop_options

double
fastNegLogMarginalBase(const FastLmlProblem& problem, const double* p,
                       size_t np, FastLmlScratch& scratch)
{
    return base_impl::negLogMarginal(problem, p, np, scratch);
}

double
fastNegLogMarginalAvx2(const FastLmlProblem& problem, const double* p,
                       size_t np, FastLmlScratch& scratch)
{
    return avx2_impl::negLogMarginal(problem, p, np, scratch);
}

bool
avx2Supported()
{
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok;
}

} // namespace detail

std::optional<RadialForm>
radialFormFor(const std::string& kernel_name)
{
    if (kernel_name == "matern52")
        return RadialForm::Matern52;
    if (kernel_name == "matern32")
        return RadialForm::Matern32;
    if (kernel_name == "rbf")
        return RadialForm::Rbf;
    return std::nullopt;
}

double
fastNegLogMarginal(const FastLmlProblem& problem, const double* p,
                   size_t np, FastLmlScratch& scratch)
{
    return detail::avx2Supported()
               ? detail::fastNegLogMarginalAvx2(problem, p, np, scratch)
               : detail::fastNegLogMarginalBase(problem, p, np, scratch);
}

} // namespace gp
} // namespace clite

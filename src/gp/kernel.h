/**
 * @file
 * Covariance kernels for the Gaussian-process surrogate model.
 *
 * The paper (Sec. 4, "Surrogate Model") selects the Matérn covariance
 * because it does not impose strong smoothness on the objective —
 * CLITE's score function has a kink at the QoS boundary. We provide
 * Matérn-5/2 (the library default, the common "Matérn" choice in BO
 * practice, e.g. Snoek et al.), Matérn-3/2, and the squared-exponential
 * RBF for the kernel ablation bench.
 *
 * All kernels use ARD (one length-scale per input dimension) plus a
 * signal variance, parameterized in log space so hyper-parameter
 * optimization stays unconstrained.
 */

#ifndef CLITE_GP_KERNEL_H
#define CLITE_GP_KERNEL_H

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace clite {
namespace gp {

/**
 * Abstract stationary ARD kernel.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Covariance between two points. @pre a.size()==b.size()==dims() */
    virtual double operator()(const linalg::Vector& a,
                              const linalg::Vector& b) const = 0;

    /**
     * Covariance as a function of the ARD-scaled distance
     * r = ||(a-b)/ℓ|| alone (every kernel here is stationary). This is
     * the hook behind the GP's training-set distance cache: the
     * per-pair squared differences are precomputed once per fit, so a
     * hyper-parameter probe rebuilds the Gram matrix from cached
     * distances + this radial profile without re-touching raw inputs.
     * Includes the σ_f² factor: fromScaledDistance(0) == σ_f².
     */
    virtual double fromScaledDistance(double r) const = 0;

    /**
     * Batched radial profile: out[i] = fromScaledDistance(r[i]) for
     * i < count, bit-identical to @p count scalar calls. Overridden by
     * every concrete kernel with a branch-free loop that hoists σ_f²
     * out of the loop (exp is deterministic, so the hoisted value is
     * the one each scalar call recomputes) — the inner loop of the
     * batched posterior's cross-covariance panel.
     */
    virtual void fromScaledDistanceBatch(const double* r, double* out,
                                         size_t count) const;

    /**
     * One row of the cross-covariance panel of a candidate block:
     * out[c] = k(cand_c, xi) for every candidate of the block, where
     * the block is stored structure-of-arrays (@p cand_soa, dim-major:
     * dimension d occupies cand_soa[d*count .. d*count+count)). The
     * scaled distance accumulates in ascending dimension order with a
     * division by the same materialized length-scale the scalar path
     * divides by, so every element is bit-identical to
     * operator()(cand_c, xi).
     *
     * @param cand_soa Candidate block, SoA layout, dims() x count.
     * @param count Candidates in the block.
     * @param xi One training point (dims() values).
     * @param ls Materialized per-dimension length-scales
     *     (lengthscales() of this kernel).
     * @param r_scratch Workspace of count doubles.
     * @param out Covariances, count values.
     */
    void crossCovarianceRow(const double* cand_soa, size_t count,
                            const double* xi, const double* ls,
                            double* r_scratch, double* out) const;

    /** All per-dimension length-scales materialized (exp applied). */
    std::vector<double> lengthscales() const;

    /** Human-readable name ("matern52", ...). */
    virtual std::string name() const = 0;

    /** Deep copy. */
    virtual std::unique_ptr<Kernel> clone() const = 0;

    /** Input dimensionality. */
    size_t dims() const { return log_lengthscales_.size(); }

    /**
     * Tie all length-scales to a single value (isotropic kernel).
     * ARD's per-dimension scales overfit badly when the sample count
     * is comparable to the dimension, as in CLITE's few-dozen-sample
     * regime; isotropic is the robust default there.
     */
    void setIsotropic(bool isotropic);

    /** True when length-scales are tied. */
    bool isotropic() const { return isotropic_; }

    /**
     * Number of log-space hyper-parameters: 2 when isotropic (signal,
     * shared length-scale), 1 + dims otherwise.
     */
    size_t numParams() const;

    /** Current log-space parameters: [log σ_f², log ℓ_1, ..., log ℓ_d]. */
    std::vector<double> logParams() const;

    /** Set log-space parameters. @pre p.size() == numParams() */
    void setLogParams(const std::vector<double>& p);

    /** Signal variance σ_f². */
    double signalVariance() const;

    /** Length-scale of dimension @p d. */
    double lengthscale(size_t d) const;

  protected:
    /**
     * @param dims Input dimensionality.
     * @param lengthscale Initial isotropic length-scale.
     * @param signal_variance Initial σ_f².
     */
    Kernel(size_t dims, double lengthscale, double signal_variance);

    /** ARD-scaled Euclidean distance r = ||(a-b)/ℓ||. */
    double scaledDistance(const linalg::Vector& a,
                          const linalg::Vector& b) const;

    double log_signal_variance_;
    std::vector<double> log_lengthscales_;
    bool isotropic_ = false;
};

/** Matérn ν=5/2 kernel: σ²(1 + √5r + 5r²/3)·exp(−√5r). */
class Matern52Kernel : public Kernel
{
  public:
    explicit Matern52Kernel(size_t dims, double lengthscale = 1.0,
                            double signal_variance = 1.0);
    double operator()(const linalg::Vector& a,
                      const linalg::Vector& b) const override;
    double fromScaledDistance(double r) const override;
    void fromScaledDistanceBatch(const double* r, double* out,
                                 size_t count) const override;
    std::string name() const override { return "matern52"; }
    std::unique_ptr<Kernel> clone() const override;
};

/** Matérn ν=3/2 kernel: σ²(1 + √3r)·exp(−√3r). */
class Matern32Kernel : public Kernel
{
  public:
    explicit Matern32Kernel(size_t dims, double lengthscale = 1.0,
                            double signal_variance = 1.0);
    double operator()(const linalg::Vector& a,
                      const linalg::Vector& b) const override;
    double fromScaledDistance(double r) const override;
    void fromScaledDistanceBatch(const double* r, double* out,
                                 size_t count) const override;
    std::string name() const override { return "matern32"; }
    std::unique_ptr<Kernel> clone() const override;
};

/** Squared-exponential kernel: σ²·exp(−r²/2). */
class RbfKernel : public Kernel
{
  public:
    explicit RbfKernel(size_t dims, double lengthscale = 1.0,
                       double signal_variance = 1.0);
    double operator()(const linalg::Vector& a,
                      const linalg::Vector& b) const override;
    double fromScaledDistance(double r) const override;
    void fromScaledDistanceBatch(const double* r, double* out,
                                 size_t count) const override;
    std::string name() const override { return "rbf"; }
    std::unique_ptr<Kernel> clone() const override;
};

/**
 * Factory by name ("matern52" | "matern32" | "rbf"); used by configs
 * and the kernel-ablation bench.
 * @throws clite::Error for an unknown name.
 */
std::unique_ptr<Kernel> makeKernel(const std::string& name, size_t dims,
                                   double lengthscale = 1.0,
                                   double signal_variance = 1.0);

} // namespace gp
} // namespace clite

#endif // CLITE_GP_KERNEL_H

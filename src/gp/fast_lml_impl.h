/**
 * @file
 * Implementation body of the fast LML evaluator, included once per
 * target ISA by fast_lml.cpp with CLITE_FAST_LML_NS set to the
 * variant's namespace name (the AVX2 inclusion sits inside a
 * #pragma GCC target("avx2") region).
 *
 * Everything here is element-wise IEEE arithmetic: explicit generic
 * vectors whose lane k always computes the same scalar expression,
 * scalar libm for the few per-matrix calls (log of the factor
 * diagonal). With contraction disabled for the translation unit the
 * compiled variants are bit-identical regardless of vector width,
 * which is what lets the runtime dispatch stay invisible to
 * reproducibility.
 */

#ifndef CLITE_FAST_LML_NS
#error "fast_lml_impl.h is included by fast_lml.cpp with CLITE_FAST_LML_NS set"
#endif
#ifndef CLITE_FAST_LML_FMA
#error "fast_lml.cpp defines CLITE_FAST_LML_FMA per inclusion"
#endif

namespace CLITE_FAST_LML_NS {

typedef double V4 __attribute__((vector_size(32)));
typedef long long V4i __attribute__((vector_size(32)));

/** Broadcast a scalar across the four lanes. */
inline V4
vsplat(double x)
{
    return (V4){x, x, x, x};
}

/**
 * Correctly-rounded fused multiply-add, lane-wise. Both ISA variants
 * compute the identical IEEE fma value: the wide variant as one
 * vfmaddpd, the baseline through libm's fma (which glibc resolves to
 * the hardware instruction when present and to the exact software
 * path otherwise). This is what lets the hot loops run fused without
 * the two variants drifting apart.
 */
inline V4
vfma(V4 a, V4 b, V4 c)
{
#if CLITE_FAST_LML_FMA
    return __builtin_ia32_vfmaddpd256(a, b, c);
#else
    return (V4){__builtin_fma(a[0], b[0], c[0]),
                __builtin_fma(a[1], b[1], c[1]),
                __builtin_fma(a[2], b[2], c[2]),
                __builtin_fma(a[3], b[3], c[3])};
#endif
}

/** Scalar twin of vfma. */
inline double
sfma(double a, double b, double c)
{
    return __builtin_fma(a, b, c);
}

/**
 * Correctly-rounded square root, lane-wise. IEEE requires sqrt to be
 * exactly rounded, so one vsqrtpd and four scalar sqrts agree bit for
 * bit — fusing the sqrt into a consumer loop never costs the
 * cross-variant identity.
 */
inline V4
vsqrt(V4 a)
{
#if CLITE_FAST_LML_FMA
    return __builtin_ia32_sqrtpd256(a);
#else
    return (V4){__builtin_sqrt(a[0]), __builtin_sqrt(a[1]),
                __builtin_sqrt(a[2]), __builtin_sqrt(a[3])};
#endif
}

constexpr double kLog2e = 1.4426950408889634074;
/// ln(2) split hi/lo for exact argument reduction.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
/**
 * 1.5·2^52 + 1023: adding it to y rounds y to the nearest integer in
 * the low mantissa bits AND leaves the IEEE-biased exponent of 2^y
 * sitting there (y + 1023 is positive over the whole live domain), so
 * the scale factor is one left-shift of the bit pattern — no
 * float-to-int conversion anywhere.
 */
constexpr double kExpMagicBias = 6755399441056767.0;
/// exp underflows to an exact 0.0 below this (keeps 2^e normal).
constexpr double kExpCutoff = -708.0;
constexpr double kLog2Pi = 1.8378770664093453;

/** Scalar exp over the negative domain; twin of expNeg4 lane math. */
inline double
expNeg(double x)
{
    double live = x > kExpCutoff ? 1.0 : 0.0;
    double xx = x > kExpCutoff ? x : kExpCutoff;
    double t = sfma(xx, kLog2e, kExpMagicBias);
    double nd = t - kExpMagicBias;
    double r = sfma(-nd, kLn2Hi, xx);
    r = sfma(-nd, kLn2Lo, r);
    unsigned long long tb;
    __builtin_memcpy(&tb, &t, 8);
    unsigned long long sb = tb << 52;
    double scale;
    __builtin_memcpy(&scale, &sb, 8);
    // Taylor tail on [-ln2/2, ln2/2]; max dropped term < 1 ulp.
    double q = 1.0 / 479001600.0;
    q = sfma(q, r, 1.0 / 39916800.0);
    q = sfma(q, r, 1.0 / 3628800.0);
    q = sfma(q, r, 1.0 / 362880.0);
    q = sfma(q, r, 1.0 / 40320.0);
    q = sfma(q, r, 1.0 / 5040.0);
    q = sfma(q, r, 1.0 / 720.0);
    q = sfma(q, r, 1.0 / 120.0);
    q = sfma(q, r, 1.0 / 24.0);
    q = sfma(q, r, 1.0 / 6.0);
    q = sfma(q, r, 0.5);
    double p = sfma(r * r, q, 1.0 + r);
    return p * scale * live;
}

/** Four-lane exp over the negative domain (x[k] <= 0 for all k). */
inline V4
expNeg4(V4 x)
{
    const V4 vcut = {kExpCutoff, kExpCutoff, kExpCutoff, kExpCutoff};
    const V4 vone = {1.0, 1.0, 1.0, 1.0};
    const V4 vzero = {0.0, 0.0, 0.0, 0.0};
    V4 live = x > vcut ? vone : vzero;
    V4 xx = x > vcut ? x : vcut;
    V4 t = vfma(xx, vsplat(kLog2e), vsplat(kExpMagicBias));
    V4 nd = t - kExpMagicBias;
    V4 r = vfma(-nd, vsplat(kLn2Hi), xx);
    r = vfma(-nd, vsplat(kLn2Lo), r);
    V4i tb;
    __builtin_memcpy(&tb, &t, 32);
    V4i sb = tb << 52;
    V4 scale;
    __builtin_memcpy(&scale, &sb, 32);
    V4 q = vsplat(1.0 / 479001600.0);
    q = vfma(q, r, vsplat(1.0 / 39916800.0));
    q = vfma(q, r, vsplat(1.0 / 3628800.0));
    q = vfma(q, r, vsplat(1.0 / 362880.0));
    q = vfma(q, r, vsplat(1.0 / 40320.0));
    q = vfma(q, r, vsplat(1.0 / 5040.0));
    q = vfma(q, r, vsplat(1.0 / 720.0));
    q = vfma(q, r, vsplat(1.0 / 120.0));
    q = vfma(q, r, vsplat(1.0 / 24.0));
    q = vfma(q, r, vsplat(1.0 / 6.0));
    q = vfma(q, r, vsplat(0.5));
    V4 p = vfma(r * r, q, vone + r);
    return p * scale * live;
}

/**
 * Dot product over two four-lane accumulators (eight independent
 * chains — the fma feeding each accumulator has 4-cycle latency, so a
 * single chain would cap at one fma per four cycles); the reduction
 * tree is fixed by the source, so the value does not depend on the
 * vector width the compiler picks.
 */
inline double
dot4(const double* a, const double* b, size_t m)
{
    V4 acc0 = {0.0, 0.0, 0.0, 0.0};
    V4 acc1 = {0.0, 0.0, 0.0, 0.0};
    size_t k = 0;
    for (; k + 8 <= m; k += 8) {
        V4 va0, vb0, va1, vb1;
        __builtin_memcpy(&va0, a + k, 32);
        __builtin_memcpy(&vb0, b + k, 32);
        __builtin_memcpy(&va1, a + k + 4, 32);
        __builtin_memcpy(&vb1, b + k + 4, 32);
        acc0 = vfma(va0, vb0, acc0);
        acc1 = vfma(va1, vb1, acc1);
    }
    if (k + 4 <= m) {
        V4 va, vb;
        __builtin_memcpy(&va, a + k, 32);
        __builtin_memcpy(&vb, b + k, 32);
        acc0 = vfma(va, vb, acc0);
        k += 4;
    }
    V4 acc = acc0 + acc1;
    double s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (; k < m; ++k)
        s = sfma(a[k], b[k], s);
    return s;
}

/**
 * Packed-row Cholesky (row i at offset i(i+1)/2), processed four rows
 * at a time: the block's entries for column j live in the four lanes
 * of one vector, accumulated from a transposed copy of the in-flight
 * rows (@p panel, 4-lane-major) against broadcasts of row j — no
 * horizontal reductions in the O(n³) part, and the four rows' divide
 * chains overlap. Divisions go through the reciprocal diagonal
 * @p invd (also consumed by the forward solve). Returns false on a
 * non-positive or non-finite pivot, mirroring the exact factor's
 * failure test so the jitter ladder engages at the same points.
 * (An eight-row variant was measured no faster here: the sweep is as
 * store/extract-bound as it is load-bound, so halving the broadcasts
 * does not shorten the critical resource.)
 */
inline bool
factorPacked(const double* k_lower, double diag, size_t n, double* l,
             double* invd, double* panel)
{
    size_t i0 = 0;
    for (; i0 + 4 <= n; i0 += 4) {
        double* li[4];
        const double* krow[4];
        for (size_t r = 0; r < 4; ++r) {
            const size_t i = i0 + r;
            li[r] = l + i * (i + 1) / 2;
            krow[r] = k_lower + i * (i - 1) / 2;
        }
        // Panel: columns j < i0 for all four rows at once. Four
        // accumulator chains keep the fma pipes full (see dot4).
        for (size_t j = 0; j < i0; ++j) {
            const double* lj = l + j * (j + 1) / 2;
            V4 sa = {0.0, 0.0, 0.0, 0.0};
            V4 sb = {0.0, 0.0, 0.0, 0.0};
            V4 sc2 = {0.0, 0.0, 0.0, 0.0};
            V4 sd = {0.0, 0.0, 0.0, 0.0};
            size_t k = 0;
            for (; k + 4 <= j; k += 4) {
                V4 p0, p1, p2, p3;
                __builtin_memcpy(&p0, panel + k * 4, 32);
                __builtin_memcpy(&p1, panel + (k + 1) * 4, 32);
                __builtin_memcpy(&p2, panel + (k + 2) * 4, 32);
                __builtin_memcpy(&p3, panel + (k + 3) * 4, 32);
                sa = vfma(p0, vsplat(lj[k]), sa);
                sb = vfma(p1, vsplat(lj[k + 1]), sb);
                sc2 = vfma(p2, vsplat(lj[k + 2]), sc2);
                sd = vfma(p3, vsplat(lj[k + 3]), sd);
            }
            for (; k < j; ++k) {
                V4 p0;
                __builtin_memcpy(&p0, panel + k * 4, 32);
                sa = vfma(p0, vsplat(lj[k]), sa);
            }
            V4 s = (sa + sb) + (sc2 + sd);
            V4 kv = {krow[0][j], krow[1][j], krow[2][j], krow[3][j]};
            V4 e = (kv - s) * invd[j];
            li[0][j] = e[0];
            li[1][j] = e[1];
            li[2][j] = e[2];
            li[3][j] = e[3];
            __builtin_memcpy(panel + j * 4, &e, 32);
        }
        // 4x4 diagonal corner: pivots and the entries under them. The
        // dots of all four rows against row c run through the panel
        // transpose in one lane-parallel sweep (k < i0, a multiple of
        // four), plus a short scalar tail over the corner columns
        // already produced by earlier c iterations.
        for (size_t c = 0; c < 4; ++c) {
            const size_t jc = i0 + c;
            const double* lc = li[c];
            V4 sa = {0.0, 0.0, 0.0, 0.0};
            V4 sb = {0.0, 0.0, 0.0, 0.0};
            V4 sc2 = {0.0, 0.0, 0.0, 0.0};
            V4 sd = {0.0, 0.0, 0.0, 0.0};
            for (size_t k = 0; k + 4 <= i0; k += 4) {
                V4 p0, p1, p2, p3;
                __builtin_memcpy(&p0, panel + k * 4, 32);
                __builtin_memcpy(&p1, panel + (k + 1) * 4, 32);
                __builtin_memcpy(&p2, panel + (k + 2) * 4, 32);
                __builtin_memcpy(&p3, panel + (k + 3) * 4, 32);
                sa = vfma(p0, vsplat(lc[k]), sa);
                sb = vfma(p1, vsplat(lc[k + 1]), sb);
                sc2 = vfma(p2, vsplat(lc[k + 2]), sc2);
                sd = vfma(p3, vsplat(lc[k + 3]), sd);
            }
            const V4 s = (sa + sb) + (sc2 + sd);
            double tot[4];
            for (size_t r = 0; r < 4; ++r) {
                double t = s[r];
                for (size_t k = i0; k < jc; ++k)
                    t = sfma(li[r][k], lc[k], t);
                tot[r] = t;
            }
            double pivot = diag - tot[c];
            if (pivot <= 0.0 || !std::isfinite(pivot))
                return false;
            const double d = std::sqrt(pivot);
            li[c][jc] = d;
            invd[jc] = 1.0 / d;
            for (size_t r = c + 1; r < 4; ++r)
                li[r][jc] = (krow[r][jc] - tot[r]) * invd[jc];
        }
        // Refresh the panel transpose with the corner columns so the
        // next block's k-loop covers them.
        for (size_t c = 0; c < 4; ++c) {
            const size_t jc = i0 + c;
            for (size_t r = 0; r < 4; ++r)
                panel[jc * 4 + r] = r >= c ? li[r][jc] : 0.0;
        }
    }
    // Ragged tail rows, one at a time.
    for (size_t i = i0; i < n; ++i) {
        const double* krow = k_lower + i * (i - 1) / 2;
        double* lrow = l + i * (i + 1) / 2;
        for (size_t j = 0; j < i; ++j) {
            const double* lj = l + j * (j + 1) / 2;
            lrow[j] = (krow[j] - dot4(lrow, lj, j)) * invd[j];
        }
        double pivot = diag - dot4(lrow, lrow, i);
        if (pivot <= 0.0 || !std::isfinite(pivot))
            return false;
        lrow[i] = std::sqrt(pivot);
        invd[i] = 1.0 / lrow[i];
    }
    return true;
}

/** Negative log marginal likelihood; see fast_lml.h for the contract. */
double
negLogMarginal(const clite::gp::FastLmlProblem& pr, const double* p,
               size_t np, clite::gp::FastLmlScratch& sc)
{
    using clite::gp::RadialForm;

    // Same parameter gate as the exact objective.
    for (size_t i = 0; i < np; ++i)
        if (!std::isfinite(p[i]) || std::fabs(p[i]) > 12.0)
            return 1e12;

    const size_t n = pr.n;
    const size_t npairs = n * (n - 1) / 2;
    const double sv = std::exp(p[0]);
    const double noise =
        pr.fit_noise ? std::exp(p[np - 1]) : pr.noise_variance;
    const double diag = sv + noise;

    // Scaled squared distances r² = Σ_d (Δx_d)² / ℓ_d².
    sc.r2.resize(npairs);
    double* r2 = sc.r2.data();
    if (pr.isotropic) {
        const double l = std::exp(p[1]);
        const double inv = 1.0 / (l * l);
        const double* sqd = pr.pair_sqdist;
        for (size_t i = 0; i < npairs; ++i)
            r2[i] = sqd[i] * inv;
    } else {
        // ARD via the weighted-Gram identity: with w_k = 1/ℓ_k² and
        // q_i = Σ_k w_k x_ik², r²_ij = q_i + q_j − 2 Σ_k w_k x_ik x_jk.
        // The contraction reads only the d×n training panel (L1-hot)
        // instead of an O(n²d) per-pair difference table. Cancellation
        // for near-coincident points costs relative accuracy in tiny
        // r² values, but every radial form this tier serves has zero
        // derivative in r at 0, so kernel values stay accurate; the
        // max(·, 0) guard absorbs the negative-roundoff corner.
        sc.inv_l2.resize(pr.dims);
        for (size_t k = 0; k < pr.dims; ++k) {
            const double l = std::exp(p[1 + k]);
            sc.inv_l2[k] = 1.0 / (l * l);
        }
        const size_t d = pr.dims;
        const double* w = sc.inv_l2.data();
        sc.q.resize(n);
        double* q = sc.q.data();
        for (size_t i = 0; i < n; ++i)
            q[i] = 0.0;
        for (size_t k = 0; k < d; ++k) {
            const double* col = pr.x_t + k * n;
            const double wk = w[k];
            for (size_t i = 0; i < n; ++i)
                q[i] = sfma(wk * col[i], col[i], q[i]);
        }
        // Scalar Gram entry: G_ij with row i's weights folded in.
        auto gramAt = [&](const double* a, size_t j) {
            double s = 0.0;
            for (size_t k = 0; k < d; ++k)
                s = sfma(a[k], pr.x_t[k * n + j], s);
            return s;
        };
        // Rows in blocks of four so each loaded column chunk feeds
        // four accumulators; the head rows (i < 4) and the ragged tail
        // go through the scalar entry path.
        sc.wa.resize(5 * d);
        double* a = sc.wa.data();
        double* ai = sc.wa.data() + 4 * d;
        size_t i0 = 4;
        for (; i0 + 4 <= n; i0 += 4) {
            for (size_t r = 0; r < 4; ++r)
                for (size_t k = 0; k < d; ++k)
                    a[r * d + k] = w[k] * pr.x_t[k * n + (i0 + r)];
            double* row[4];
            for (size_t r = 0; r < 4; ++r)
                row[r] = r2 + (i0 + r) * (i0 + r - 1) / 2;
            // Shared j-range [0, i0) — a multiple of 4, no tail. The
            // k-loop is bound by the load ports (each vsplat is a
            // broadcast-load), so columns are tiled by eight: one
            // weight broadcast then feeds two column vectors, and the
            // per-column load traffic drops by ~40%. Lane math is
            // unchanged by the tiling — each (row, j) chain is the
            // same k-ascending vfma sequence.
            const V4 vz = {0.0, 0.0, 0.0, 0.0};
            auto finish4 = [&](size_t jc, V4 g0, V4 g1, V4 g2, V4 g3) {
                V4 qj;
                __builtin_memcpy(&qj, q + jc, 32);
                V4 e0 = (q[i0 + 0] + qj) - 2.0 * g0;
                V4 e1 = (q[i0 + 1] + qj) - 2.0 * g1;
                V4 e2 = (q[i0 + 2] + qj) - 2.0 * g2;
                V4 e3 = (q[i0 + 3] + qj) - 2.0 * g3;
                e0 = e0 > vz ? e0 : vz;
                e1 = e1 > vz ? e1 : vz;
                e2 = e2 > vz ? e2 : vz;
                e3 = e3 > vz ? e3 : vz;
                __builtin_memcpy(row[0] + jc, &e0, 32);
                __builtin_memcpy(row[1] + jc, &e1, 32);
                __builtin_memcpy(row[2] + jc, &e2, 32);
                __builtin_memcpy(row[3] + jc, &e3, 32);
            };
            size_t j = 0;
            for (; j + 8 <= i0; j += 8) {
                V4 g0a = vz, g1a = vz, g2a = vz, g3a = vz;
                V4 g0b = vz, g1b = vz, g2b = vz, g3b = vz;
                for (size_t k = 0; k < d; ++k) {
                    V4 va, vb;
                    __builtin_memcpy(&va, pr.x_t + k * n + j, 32);
                    __builtin_memcpy(&vb, pr.x_t + k * n + j + 4, 32);
                    const V4 w0 = vsplat(a[0 * d + k]);
                    const V4 w1 = vsplat(a[1 * d + k]);
                    const V4 w2 = vsplat(a[2 * d + k]);
                    const V4 w3 = vsplat(a[3 * d + k]);
                    g0a = vfma(va, w0, g0a);
                    g0b = vfma(vb, w0, g0b);
                    g1a = vfma(va, w1, g1a);
                    g1b = vfma(vb, w1, g1b);
                    g2a = vfma(va, w2, g2a);
                    g2b = vfma(vb, w2, g2b);
                    g3a = vfma(va, w3, g3a);
                    g3b = vfma(vb, w3, g3b);
                }
                finish4(j, g0a, g1a, g2a, g3a);
                finish4(j + 4, g0b, g1b, g2b, g3b);
            }
            for (; j + 4 <= i0; j += 4) {
                V4 g0 = vz, g1 = vz, g2 = vz, g3 = vz;
                for (size_t k = 0; k < d; ++k) {
                    V4 v;
                    __builtin_memcpy(&v, pr.x_t + k * n + j, 32);
                    g0 = vfma(v, vsplat(a[0 * d + k]), g0);
                    g1 = vfma(v, vsplat(a[1 * d + k]), g1);
                    g2 = vfma(v, vsplat(a[2 * d + k]), g2);
                    g3 = vfma(v, vsplat(a[3 * d + k]), g3);
                }
                finish4(j, g0, g1, g2, g3);
            }
            // Triangle corner within the block: j in [i0, i).
            for (size_t r = 1; r < 4; ++r) {
                const size_t i = i0 + r;
                for (size_t j = i0; j < i; ++j) {
                    const double v =
                        (q[i] + q[j]) - 2.0 * gramAt(a + r * d, j);
                    row[r][j] = v > 0.0 ? v : 0.0;
                }
            }
        }
        // Head rows 1..3 and the ragged tail rows.
        auto scalarRow = [&](size_t i) {
            for (size_t k = 0; k < d; ++k)
                ai[k] = w[k] * pr.x_t[k * n + i];
            double* row = r2 + i * (i - 1) / 2;
            for (size_t j = 0; j < i; ++j) {
                const double v = (q[i] + q[j]) - 2.0 * gramAt(ai, j);
                row[j] = v > 0.0 ? v : 0.0;
            }
        };
        for (size_t i = 1; i < (n < 4 ? n : size_t(4)); ++i)
            scalarRow(i);
        for (size_t i = i0; i < n; ++i)
            scalarRow(i);
    }

    // Kernel values per pair. The Matérn forms share the structure
    // σ_f² · poly(s) · exp(−s) with s = c·r; RBF is σ_f²·exp(−r²/2).
    sc.kv.resize(npairs);
    double* kv = sc.kv.data();
    if (pr.form == RadialForm::Rbf) {
        size_t i = 0;
        for (; i + 4 <= npairs; i += 4) {
            V4 v;
            __builtin_memcpy(&v, r2 + i, 32);
            V4 e = expNeg4(-0.5 * v);
            V4 out = sv * e;
            __builtin_memcpy(kv + i, &out, 32);
        }
        for (; i < npairs; ++i)
            kv[i] = sv * expNeg(-0.5 * r2[i]);
    } else {
        const double c = pr.form == RadialForm::Matern52
                             ? 2.2360679774997896  // √5
                             : 1.7320508075688772; // √3
        const bool m52 = pr.form == RadialForm::Matern52;
        const V4 vone = {1.0, 1.0, 1.0, 1.0};
        size_t i = 0;
        for (; i + 4 <= npairs; i += 4) {
            V4 v;
            __builtin_memcpy(&v, r2 + i, 32);
            V4 s = c * vsqrt(v);
            V4 e = expNeg4(-s);
            V4 poly =
                m52 ? vfma(s * s, vsplat(1.0 / 3.0), vone + s) : vone + s;
            V4 out = sv * poly * e;
            __builtin_memcpy(kv + i, &out, 32);
        }
        for (; i < npairs; ++i) {
            double s = c * std::sqrt(r2[i]);
            double e = expNeg(-s);
            double poly = m52 ? sfma(s * s, 1.0 / 3.0, 1.0 + s) : 1.0 + s;
            kv[i] = sv * poly * e;
        }
    }

    // Factor with the exact path's jitter ladder: plain attempt, then
    // decades jitter … max_jitter; total failure scores like the
    // exact objective's caught factorization error.
    sc.factor.resize(n * (n + 1) / 2);
    sc.invd.resize(n);
    sc.panel.resize(4 * n);
    double* l = sc.factor.data();
    bool ok = factorPacked(kv, diag, n, l, sc.invd.data(),
                           sc.panel.data());
    for (double j = 1e-10; !ok && j <= 1e-2; j *= 10.0)
        ok = factorPacked(kv, diag + j, n, l, sc.invd.data(),
                          sc.panel.data());
    if (!ok)
        return 1e12;

    // Data fit through one forward solve: y'K⁻¹y = ‖L⁻¹y‖².
    sc.z.resize(n);
    double* z = sc.z.data();
    for (size_t i = 0; i < n; ++i) {
        const double* lrow = l + i * (i + 1) / 2;
        z[i] = (pr.ys_std[i] - dot4(lrow, z, i)) * sc.invd[i];
    }
    const double data_fit = dot4(z, z, n);

    double half_logdet = 0.0;
    for (size_t i = 0; i < n; ++i)
        half_logdet += std::log(l[i * (i + 1) / 2 + i]);

    return 0.5 * data_fit + half_logdet + 0.5 * double(n) * kLog2Pi;
}

} // namespace CLITE_FAST_LML_NS

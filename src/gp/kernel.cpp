#include "gp/kernel.h"

#include <cmath>

#include "common/error.h"

namespace clite {
namespace gp {

Kernel::Kernel(size_t dims, double lengthscale, double signal_variance)
{
    CLITE_CHECK(dims > 0, "kernel needs dims > 0");
    CLITE_CHECK(lengthscale > 0.0, "lengthscale must be > 0");
    CLITE_CHECK(signal_variance > 0.0, "signal variance must be > 0");
    log_signal_variance_ = std::log(signal_variance);
    log_lengthscales_.assign(dims, std::log(lengthscale));
}

void
Kernel::setIsotropic(bool isotropic)
{
    isotropic_ = isotropic;
    if (isotropic_) {
        // Tie all scales to the first one.
        for (size_t d = 1; d < log_lengthscales_.size(); ++d)
            log_lengthscales_[d] = log_lengthscales_[0];
    }
}

size_t
Kernel::numParams() const
{
    return isotropic_ ? 2 : 1 + log_lengthscales_.size();
}

std::vector<double>
Kernel::logParams() const
{
    std::vector<double> p;
    p.reserve(numParams());
    p.push_back(log_signal_variance_);
    if (isotropic_)
        p.push_back(log_lengthscales_[0]);
    else
        p.insert(p.end(), log_lengthscales_.begin(),
                 log_lengthscales_.end());
    return p;
}

void
Kernel::setLogParams(const std::vector<double>& p)
{
    CLITE_CHECK(p.size() == numParams(),
                "kernel expects " << numParams() << " params, got "
                                  << p.size());
    log_signal_variance_ = p[0];
    if (isotropic_) {
        for (double& l : log_lengthscales_)
            l = p[1];
    } else {
        for (size_t d = 0; d < log_lengthscales_.size(); ++d)
            log_lengthscales_[d] = p[d + 1];
    }
}

double
Kernel::signalVariance() const
{
    return std::exp(log_signal_variance_);
}

double
Kernel::lengthscale(size_t d) const
{
    CLITE_CHECK(d < log_lengthscales_.size(), "lengthscale dim " << d
                    << " out of " << log_lengthscales_.size());
    return std::exp(log_lengthscales_[d]);
}

std::vector<double>
Kernel::lengthscales() const
{
    std::vector<double> ls(dims());
    for (size_t d = 0; d < dims(); ++d)
        ls[d] = std::exp(log_lengthscales_[d]);
    return ls;
}

void
Kernel::fromScaledDistanceBatch(const double* r, double* out,
                                size_t count) const
{
    for (size_t i = 0; i < count; ++i)
        out[i] = fromScaledDistance(r[i]);
}

void
Kernel::crossCovarianceRow(const double* cand_soa, size_t count,
                           const double* xi, const double* ls,
                           double* r_scratch, double* out) const
{
    // Scaled distance, dimensions in ascending order and divided by
    // the same materialized exp(log ℓ_d) the scalar path divides by —
    // per candidate this is the exact operation sequence of
    // scaledDistance(cand, xi).
    for (size_t c = 0; c < count; ++c)
        r_scratch[c] = 0.0;
    const size_t d_count = dims();
    for (size_t d = 0; d < d_count; ++d) {
        const double* col = cand_soa + d * count;
        const double xd = xi[d];
        const double ld = ls[d];
        for (size_t c = 0; c < count; ++c) {
            double diff = (col[c] - xd) / ld;
            r_scratch[c] += diff * diff;
        }
    }
    for (size_t c = 0; c < count; ++c)
        r_scratch[c] = std::sqrt(r_scratch[c]);
    fromScaledDistanceBatch(r_scratch, out, count);
}

double
Kernel::scaledDistance(const linalg::Vector& a, const linalg::Vector& b) const
{
    CLITE_CHECK(a.size() == dims() && b.size() == dims(),
                "kernel input dims mismatch: " << a.size() << ", "
                    << b.size() << " vs " << dims());
    double r2 = 0.0;
    for (size_t d = 0; d < dims(); ++d) {
        double diff = (a[d] - b[d]) / std::exp(log_lengthscales_[d]);
        r2 += diff * diff;
    }
    return std::sqrt(r2);
}

Matern52Kernel::Matern52Kernel(size_t dims, double lengthscale,
                               double signal_variance)
    : Kernel(dims, lengthscale, signal_variance)
{
}

double
Matern52Kernel::operator()(const linalg::Vector& a,
                           const linalg::Vector& b) const
{
    return fromScaledDistance(scaledDistance(a, b));
}

double
Matern52Kernel::fromScaledDistance(double r) const
{
    double s = std::sqrt(5.0) * r;
    return signalVariance() * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

void
Matern52Kernel::fromScaledDistanceBatch(const double* r, double* out,
                                        size_t count) const
{
    // σ_f² hoisted (exp is deterministic: the hoisted value equals
    // what each scalar call recomputes), loop body textually matches
    // fromScaledDistance so every element is bit-identical.
    const double sv = signalVariance();
    for (size_t i = 0; i < count; ++i) {
        double s = std::sqrt(5.0) * r[i];
        out[i] = sv * (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
}

std::unique_ptr<Kernel>
Matern52Kernel::clone() const
{
    return std::make_unique<Matern52Kernel>(*this);
}

Matern32Kernel::Matern32Kernel(size_t dims, double lengthscale,
                               double signal_variance)
    : Kernel(dims, lengthscale, signal_variance)
{
}

double
Matern32Kernel::operator()(const linalg::Vector& a,
                           const linalg::Vector& b) const
{
    return fromScaledDistance(scaledDistance(a, b));
}

double
Matern32Kernel::fromScaledDistance(double r) const
{
    double s = std::sqrt(3.0) * r;
    return signalVariance() * (1.0 + s) * std::exp(-s);
}

void
Matern32Kernel::fromScaledDistanceBatch(const double* r, double* out,
                                        size_t count) const
{
    const double sv = signalVariance();
    for (size_t i = 0; i < count; ++i) {
        double s = std::sqrt(3.0) * r[i];
        out[i] = sv * (1.0 + s) * std::exp(-s);
    }
}

std::unique_ptr<Kernel>
Matern32Kernel::clone() const
{
    return std::make_unique<Matern32Kernel>(*this);
}

RbfKernel::RbfKernel(size_t dims, double lengthscale, double signal_variance)
    : Kernel(dims, lengthscale, signal_variance)
{
}

double
RbfKernel::operator()(const linalg::Vector& a, const linalg::Vector& b) const
{
    return fromScaledDistance(scaledDistance(a, b));
}

double
RbfKernel::fromScaledDistance(double r) const
{
    return signalVariance() * std::exp(-0.5 * r * r);
}

void
RbfKernel::fromScaledDistanceBatch(const double* r, double* out,
                                   size_t count) const
{
    const double sv = signalVariance();
    for (size_t i = 0; i < count; ++i)
        out[i] = sv * std::exp(-0.5 * r[i] * r[i]);
}

std::unique_ptr<Kernel>
RbfKernel::clone() const
{
    return std::make_unique<RbfKernel>(*this);
}

std::unique_ptr<Kernel>
makeKernel(const std::string& name, size_t dims, double lengthscale,
           double signal_variance)
{
    if (name == "matern52")
        return std::make_unique<Matern52Kernel>(dims, lengthscale,
                                                signal_variance);
    if (name == "matern32")
        return std::make_unique<Matern32Kernel>(dims, lengthscale,
                                                signal_variance);
    if (name == "rbf")
        return std::make_unique<RbfKernel>(dims, lengthscale,
                                           signal_variance);
    CLITE_THROW("unknown kernel name: " << name);
}

} // namespace gp
} // namespace clite

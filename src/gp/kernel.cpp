#include "gp/kernel.h"

#include <cmath>

#include "common/error.h"

namespace clite {
namespace gp {

Kernel::Kernel(size_t dims, double lengthscale, double signal_variance)
{
    CLITE_CHECK(dims > 0, "kernel needs dims > 0");
    CLITE_CHECK(lengthscale > 0.0, "lengthscale must be > 0");
    CLITE_CHECK(signal_variance > 0.0, "signal variance must be > 0");
    log_signal_variance_ = std::log(signal_variance);
    log_lengthscales_.assign(dims, std::log(lengthscale));
}

void
Kernel::setIsotropic(bool isotropic)
{
    isotropic_ = isotropic;
    if (isotropic_) {
        // Tie all scales to the first one.
        for (size_t d = 1; d < log_lengthscales_.size(); ++d)
            log_lengthscales_[d] = log_lengthscales_[0];
    }
}

size_t
Kernel::numParams() const
{
    return isotropic_ ? 2 : 1 + log_lengthscales_.size();
}

std::vector<double>
Kernel::logParams() const
{
    std::vector<double> p;
    p.reserve(numParams());
    p.push_back(log_signal_variance_);
    if (isotropic_)
        p.push_back(log_lengthscales_[0]);
    else
        p.insert(p.end(), log_lengthscales_.begin(),
                 log_lengthscales_.end());
    return p;
}

void
Kernel::setLogParams(const std::vector<double>& p)
{
    CLITE_CHECK(p.size() == numParams(),
                "kernel expects " << numParams() << " params, got "
                                  << p.size());
    log_signal_variance_ = p[0];
    if (isotropic_) {
        for (double& l : log_lengthscales_)
            l = p[1];
    } else {
        for (size_t d = 0; d < log_lengthscales_.size(); ++d)
            log_lengthscales_[d] = p[d + 1];
    }
}

double
Kernel::signalVariance() const
{
    return std::exp(log_signal_variance_);
}

double
Kernel::lengthscale(size_t d) const
{
    CLITE_CHECK(d < log_lengthscales_.size(), "lengthscale dim " << d
                    << " out of " << log_lengthscales_.size());
    return std::exp(log_lengthscales_[d]);
}

double
Kernel::scaledDistance(const linalg::Vector& a, const linalg::Vector& b) const
{
    CLITE_CHECK(a.size() == dims() && b.size() == dims(),
                "kernel input dims mismatch: " << a.size() << ", "
                    << b.size() << " vs " << dims());
    double r2 = 0.0;
    for (size_t d = 0; d < dims(); ++d) {
        double diff = (a[d] - b[d]) / std::exp(log_lengthscales_[d]);
        r2 += diff * diff;
    }
    return std::sqrt(r2);
}

Matern52Kernel::Matern52Kernel(size_t dims, double lengthscale,
                               double signal_variance)
    : Kernel(dims, lengthscale, signal_variance)
{
}

double
Matern52Kernel::operator()(const linalg::Vector& a,
                           const linalg::Vector& b) const
{
    return fromScaledDistance(scaledDistance(a, b));
}

double
Matern52Kernel::fromScaledDistance(double r) const
{
    double s = std::sqrt(5.0) * r;
    return signalVariance() * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

std::unique_ptr<Kernel>
Matern52Kernel::clone() const
{
    return std::make_unique<Matern52Kernel>(*this);
}

Matern32Kernel::Matern32Kernel(size_t dims, double lengthscale,
                               double signal_variance)
    : Kernel(dims, lengthscale, signal_variance)
{
}

double
Matern32Kernel::operator()(const linalg::Vector& a,
                           const linalg::Vector& b) const
{
    return fromScaledDistance(scaledDistance(a, b));
}

double
Matern32Kernel::fromScaledDistance(double r) const
{
    double s = std::sqrt(3.0) * r;
    return signalVariance() * (1.0 + s) * std::exp(-s);
}

std::unique_ptr<Kernel>
Matern32Kernel::clone() const
{
    return std::make_unique<Matern32Kernel>(*this);
}

RbfKernel::RbfKernel(size_t dims, double lengthscale, double signal_variance)
    : Kernel(dims, lengthscale, signal_variance)
{
}

double
RbfKernel::operator()(const linalg::Vector& a, const linalg::Vector& b) const
{
    return fromScaledDistance(scaledDistance(a, b));
}

double
RbfKernel::fromScaledDistance(double r) const
{
    return signalVariance() * std::exp(-0.5 * r * r);
}

std::unique_ptr<Kernel>
RbfKernel::clone() const
{
    return std::make_unique<RbfKernel>(*this);
}

std::unique_ptr<Kernel>
makeKernel(const std::string& name, size_t dims, double lengthscale,
           double signal_variance)
{
    if (name == "matern52")
        return std::make_unique<Matern52Kernel>(dims, lengthscale,
                                                signal_variance);
    if (name == "matern32")
        return std::make_unique<Matern32Kernel>(dims, lengthscale,
                                                signal_variance);
    if (name == "rbf")
        return std::make_unique<RbfKernel>(dims, lengthscale,
                                           signal_variance);
    CLITE_THROW("unknown kernel name: " << name);
}

} // namespace gp
} // namespace clite

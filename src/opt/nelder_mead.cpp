#include "opt/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/thread_pool.h"

namespace clite {
namespace opt {

NmResult
nelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, NmOptions options)
{
    const size_t n = x0.size();
    CLITE_CHECK(n > 0, "nelderMeadMinimize needs a non-empty start point");

    NmResult result;

    // Initial simplex: x0 plus one vertex per axis.
    std::vector<std::vector<double>> simplex(n + 1, x0);
    for (size_t i = 0; i < n; ++i) {
        double delta = options.initial_scale;
        if (x0[i] != 0.0)
            delta *= std::fabs(x0[i]);
        simplex[i + 1][i] += delta;
    }

    std::vector<double> values(n + 1);
    for (size_t i = 0; i <= n; ++i) {
        values[i] = f(simplex[i]);
        ++result.evaluations;
    }
    result.f0 = values[0]; // vertex 0 is x0 itself

    std::vector<size_t> order(n + 1);
    for (int iter = 0; iter < options.max_iters; ++iter) {
        result.iterations = iter + 1;
        std::iota(order.begin(), order.end(), size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return values[a] < values[b]; });
        size_t best = order[0], worst = order[n], second = order[n - 1];

        // Convergence: f-spread and simplex diameter.
        double f_spread = values[worst] - values[best];
        double diameter = 0.0;
        for (size_t i = 0; i < n; ++i)
            diameter = std::max(
                diameter,
                std::fabs(simplex[worst][i] - simplex[best][i]));
        if (f_spread < options.f_tol || diameter < options.x_tol) {
            result.converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (size_t v = 0; v <= n; ++v) {
            if (v == worst)
                continue;
            for (size_t i = 0; i < n; ++i)
                centroid[i] += simplex[v][i];
        }
        for (double& c : centroid)
            c /= double(n);

        auto along = [&](double coeff) {
            std::vector<double> p(n);
            for (size_t i = 0; i < n; ++i)
                p[i] = centroid[i] + coeff * (simplex[worst][i]
                                              - centroid[i]);
            return p;
        };

        std::vector<double> reflected = along(-1.0);
        double fr = f(reflected);
        ++result.evaluations;

        if (fr < values[best]) {
            std::vector<double> expanded = along(-2.0);
            double fe = f(expanded);
            ++result.evaluations;
            if (fe < fr) {
                simplex[worst] = std::move(expanded);
                values[worst] = fe;
            } else {
                simplex[worst] = std::move(reflected);
                values[worst] = fr;
            }
        } else if (fr < values[second]) {
            simplex[worst] = std::move(reflected);
            values[worst] = fr;
        } else {
            // Contract toward the better of (worst, reflected).
            double coeff = (fr < values[worst]) ? -0.5 : 0.5;
            std::vector<double> contracted = along(coeff);
            double fc = f(contracted);
            ++result.evaluations;
            if (fc < std::min(values[worst], fr)) {
                simplex[worst] = std::move(contracted);
                values[worst] = fc;
            } else {
                // Shrink every vertex toward the best.
                for (size_t v = 0; v <= n; ++v) {
                    if (v == best)
                        continue;
                    for (size_t i = 0; i < n; ++i)
                        simplex[v][i] = simplex[best][i] +
                                        0.5 * (simplex[v][i]
                                               - simplex[best][i]);
                    values[v] = f(simplex[v]);
                    ++result.evaluations;
                }
            }
        }
    }

    size_t best = 0;
    for (size_t i = 1; i <= n; ++i)
        if (values[i] < values[best])
            best = i;
    result.x = simplex[best];
    result.value = values[best];
    return result;
}

std::vector<NmResult>
nelderMeadMultiStart(
    const std::function<
        std::function<double(const std::vector<double>&)>(size_t)>&
        make_objective,
    const std::vector<std::vector<double>>& starts, NmOptions options,
    ThreadPool* pool)
{
    std::vector<NmResult> results(starts.size());
    auto run = [&](size_t i) {
        auto objective = make_objective(i);
        results[i] = nelderMeadMinimize(objective, starts[i], options);
    };
    if (pool != nullptr) {
        pool->parallelFor(starts.size(), run);
    } else {
        for (size_t i = 0; i < starts.size(); ++i)
            run(i);
    }
    return results;
}

} // namespace opt
} // namespace clite

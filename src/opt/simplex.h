/**
 * @file
 * Exact Euclidean projection onto the constraint set of CLITE's
 * acquisition optimization (Eq. 5–6 of the paper):
 *
 *   { x : Σ_i x_i = total,  lo_i <= x_i <= hi_i }
 *
 * i.e. a box-truncated simplex (one per shared resource). Also provides
 * the sum-preserving integer rounding that maps a continuous optimum
 * back into the discrete partition lattice.
 */

#ifndef CLITE_OPT_SIMPLEX_H
#define CLITE_OPT_SIMPLEX_H

#include <vector>

namespace clite {
namespace opt {

/**
 * True when the set {Σ x = total, lo <= x <= hi} is non-empty.
 */
bool simplexBoxFeasible(double total, const std::vector<double>& lo,
                        const std::vector<double>& hi);

/**
 * Euclidean projection of @p y onto {x : Σ x = total, lo <= x <= hi}.
 *
 * Solved by bisection on the KKT multiplier τ of the equality
 * constraint: x_i(τ) = clamp(y_i − τ, lo_i, hi_i) is monotone
 * non-increasing in τ, so the root of Σ x_i(τ) = total is found to
 * machine precision.
 *
 * @param y Point to project.
 * @param total Required coordinate sum.
 * @param lo Per-coordinate lower bounds.
 * @param hi Per-coordinate upper bounds.
 * @return The projection.
 * @throws clite::Error when the constraint set is empty or shapes
 *     mismatch.
 */
std::vector<double> projectSimplexBox(const std::vector<double>& y,
                                      double total,
                                      const std::vector<double>& lo,
                                      const std::vector<double>& hi);

/**
 * Round a continuous point on the simplex to integers while preserving
 * the (integer) sum and the integer box [lo_i, hi_i].
 *
 * Floors every coordinate, then hands the remaining units to the
 * coordinates with the largest fractional parts (largest-remainder
 * method), skipping coordinates at their upper bound.
 *
 * @param x Continuous coordinates (assumed feasible up to rounding).
 * @param total Required integer sum.
 * @param lo Integer lower bounds.
 * @param hi Integer upper bounds.
 * @throws clite::Error if no integer point in the box can reach the sum.
 */
std::vector<int> roundToIntegerComposition(const std::vector<double>& x,
                                           int total,
                                           const std::vector<int>& lo,
                                           const std::vector<int>& hi);

} // namespace opt
} // namespace clite

#endif // CLITE_OPT_SIMPLEX_H

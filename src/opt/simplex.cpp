#include "opt/simplex.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace clite {
namespace opt {

bool
simplexBoxFeasible(double total, const std::vector<double>& lo,
                   const std::vector<double>& hi)
{
    double lo_sum = std::accumulate(lo.begin(), lo.end(), 0.0);
    double hi_sum = std::accumulate(hi.begin(), hi.end(), 0.0);
    return lo_sum <= total + 1e-9 && total <= hi_sum + 1e-9;
}

std::vector<double>
projectSimplexBox(const std::vector<double>& y, double total,
                  const std::vector<double>& lo,
                  const std::vector<double>& hi)
{
    const size_t n = y.size();
    CLITE_CHECK(lo.size() == n && hi.size() == n,
                "projectSimplexBox shape mismatch: y=" << n << " lo="
                    << lo.size() << " hi=" << hi.size());
    for (size_t i = 0; i < n; ++i)
        CLITE_CHECK(lo[i] <= hi[i], "bound inversion at coordinate "
                                        << i << ": [" << lo[i] << ", "
                                        << hi[i] << "]");
    CLITE_CHECK(simplexBoxFeasible(total, lo, hi),
                "simplex-box constraint set is empty for total " << total);

    auto sum_at = [&](double tau) {
        double s = 0.0;
        for (size_t i = 0; i < n; ++i)
            s += std::clamp(y[i] - tau, lo[i], hi[i]);
        return s;
    };

    // Bracket tau: at tau_lo every coordinate is at hi, at tau_hi at lo.
    double tau_lo = -1.0, tau_hi = 1.0;
    for (size_t i = 0; i < n; ++i) {
        tau_lo = std::min(tau_lo, y[i] - hi[i] - 1.0);
        tau_hi = std::max(tau_hi, y[i] - lo[i] + 1.0);
    }
    // sum_at is non-increasing in tau; bisect to the target total.
    for (int it = 0; it < 200; ++it) {
        double mid = 0.5 * (tau_lo + tau_hi);
        if (sum_at(mid) > total)
            tau_lo = mid;
        else
            tau_hi = mid;
        if (tau_hi - tau_lo < 1e-14 * (1.0 + std::fabs(tau_hi)))
            break;
    }
    double tau = 0.5 * (tau_lo + tau_hi);

    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = std::clamp(y[i] - tau, lo[i], hi[i]);
    return x;
}

std::vector<int>
roundToIntegerComposition(const std::vector<double>& x, int total,
                          const std::vector<int>& lo,
                          const std::vector<int>& hi)
{
    const size_t n = x.size();
    CLITE_CHECK(lo.size() == n && hi.size() == n,
                "roundToIntegerComposition shape mismatch");
    long lo_sum = 0, hi_sum = 0;
    for (size_t i = 0; i < n; ++i) {
        CLITE_CHECK(lo[i] <= hi[i], "integer bound inversion at " << i);
        lo_sum += lo[i];
        hi_sum += hi[i];
    }
    CLITE_CHECK(lo_sum <= total && total <= hi_sum,
                "no integer composition of " << total << " fits the box");

    // Start from the clamped floor, then distribute the deficit to the
    // coordinates with the largest fractional remainder (or pull the
    // surplus from the smallest).
    std::vector<int> out(n);
    std::vector<double> frac(n);
    long sum = 0;
    for (size_t i = 0; i < n; ++i) {
        double clamped = std::clamp(x[i], double(lo[i]), double(hi[i]));
        out[i] = int(std::floor(clamped));
        out[i] = std::clamp(out[i], lo[i], hi[i]);
        frac[i] = clamped - double(out[i]);
        sum += out[i];
    }

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});

    while (sum < total) {
        // Give a unit to the raisable coordinate with max fraction.
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return frac[a] > frac[b];
        });
        bool moved = false;
        for (size_t i : order) {
            if (out[i] < hi[i]) {
                ++out[i];
                frac[i] -= 1.0;
                ++sum;
                moved = true;
                break;
            }
        }
        CLITE_ASSERT(moved, "feasible by construction but no unit placed");
    }
    while (sum > total) {
        // Take a unit from the lowerable coordinate with min fraction.
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return frac[a] < frac[b];
        });
        bool moved = false;
        for (size_t i : order) {
            if (out[i] > lo[i]) {
                --out[i];
                frac[i] += 1.0;
                --sum;
                moved = true;
                break;
            }
        }
        CLITE_ASSERT(moved, "feasible by construction but no unit removed");
    }
    return out;
}

} // namespace opt
} // namespace clite

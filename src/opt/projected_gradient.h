/**
 * @file
 * Projected-gradient ascent over a product of box-truncated simplices.
 *
 * This is the library's stand-in for the paper's SLSQP call (Sec. 4,
 * Eq. 4–6): CLITE maximizes the acquisition function a(x(j,r)) subject
 * to per-resource bounds (Eq. 5) and per-resource sum equalities
 * (Eq. 6). The feasible set factorizes into one simplex-box block per
 * resource, so projected gradient with the exact projection of
 * opt/simplex.h solves the same constrained program. Gradients are
 * central finite differences (the acquisition has no closed-form
 * gradient through the GP without extra plumbing), with a backtracking
 * (Armijo) line search along the projected arc.
 */

#ifndef CLITE_OPT_PROJECTED_GRADIENT_H
#define CLITE_OPT_PROJECTED_GRADIENT_H

#include <functional>
#include <vector>

namespace clite {
namespace opt {

/**
 * One equality-constrained block of coordinates: the coordinates listed
 * in @p indices must sum to @p total and respect [lo, hi] element-wise.
 * (For CLITE: the allocations of one resource across all jobs.)
 */
struct SimplexBlock
{
    std::vector<size_t> indices; ///< Coordinate indices in the full vector.
    double total = 0.0;          ///< Required sum over the block.
    std::vector<double> lo;      ///< Per-coordinate lower bounds.
    std::vector<double> hi;      ///< Per-coordinate upper bounds.
};

/** Tuning knobs for the projected-gradient solver. */
struct PgOptions
{
    int max_iters = 60;       ///< Outer ascent iterations.
    double initial_step = 2.0;///< First trial step length.
    int max_backtracks = 12;  ///< Armijo halvings per iteration.
    double fd_step = 1e-3;    ///< Finite-difference half-step.
    double tol = 1e-8;        ///< Stop when the improvement drops below.
};

/** Result of one maximize() call. */
struct PgResult
{
    std::vector<double> x; ///< Best feasible point found.
    double value = 0.0;    ///< Objective at x.
    int iterations = 0;    ///< Ascent iterations performed.
    int evaluations = 0;   ///< Objective evaluations consumed.
};

/**
 * Projected-gradient maximizer over a product of SimplexBlocks.
 */
class ProjectedGradientOptimizer
{
  public:
    using Objective = std::function<double(const std::vector<double>&)>;

    /**
     * Batched objective: write f(points[i]) into out[i] for every
     * point. Must be value-identical to the scalar Objective on each
     * point — the solver mixes the two (batched finite-difference
     * probes, scalar line-search trials) and the bit-exact trace
     * contract only holds when they agree to the last ULP, as the
     * acquisition evaluateBatch/evaluate pair does.
     */
    using BatchObjective = std::function<void(
        const std::vector<std::vector<double>>&, double*)>;

    /**
     * @param blocks Disjoint blocks covering (a subset of) the
     *     coordinates; coordinates not covered by any block are held
     *     fixed at their initial value.
     * @param dimension Length of the full optimization vector.
     * @param options Solver knobs.
     */
    ProjectedGradientOptimizer(std::vector<SimplexBlock> blocks,
                               size_t dimension, PgOptions options = {});

    /** Project an arbitrary point onto the feasible set, block by block. */
    std::vector<double> project(const std::vector<double>& y) const;

    /**
     * Run projected-gradient ascent from @p x0 (projected first).
     *
     * @param f Objective to maximize; must be finite on the feasible set.
     * @param x0 Starting point (any point; it is projected).
     */
    PgResult maximize(const Objective& f,
                      const std::vector<double>& x0) const;

    /**
     * As maximize(f, x0), but the 2d finite-difference probe points of
     * each gradient are evaluated through @p fb in one call instead of
     * 2d scalar calls — for objectives with a batched fast path (the
     * GP acquisition via predictBatch). Results are bit-identical to
     * the scalar overload whenever fb matches f value-for-value.
     */
    PgResult maximize(const Objective& f, const BatchObjective& fb,
                      const std::vector<double>& x0) const;

    /**
     * Multi-start wrapper: run maximize() from each start and keep the
     * best result.
     * @pre starts is non-empty.
     */
    PgResult maximizeMultiStart(
        const Objective& f,
        const std::vector<std::vector<double>>& starts) const;

    /** Multi-start with batched gradient probes (see maximize overload). */
    PgResult maximizeMultiStart(
        const Objective& f, const BatchObjective& fb,
        const std::vector<std::vector<double>>& starts) const;

  private:
    /**
     * Central-difference gradient restricted to block coordinates;
     * probes go through @p fb when non-null, else through @p f.
     */
    std::vector<double> gradient(const Objective& f,
                                 const BatchObjective* fb,
                                 const std::vector<double>& x,
                                 int* evals) const;

    std::vector<SimplexBlock> blocks_;
    size_t dimension_;
    PgOptions options_;
};

} // namespace opt
} // namespace clite

#endif // CLITE_OPT_PROJECTED_GRADIENT_H

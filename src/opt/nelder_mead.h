/**
 * @file
 * Nelder-Mead downhill simplex minimizer.
 *
 * Used where the paper's reference implementation relies on generic
 * scipy optimizers without constraints: fitting the Gaussian-process
 * hyper-parameters by maximizing the log marginal likelihood (we
 * minimize its negation over log-hyper-parameters, which keeps the
 * search unconstrained and positively-scaled).
 */

#ifndef CLITE_OPT_NELDER_MEAD_H
#define CLITE_OPT_NELDER_MEAD_H

#include <functional>
#include <vector>

namespace clite {

class ThreadPool;

namespace opt {

/** Tuning knobs for Nelder-Mead. */
struct NmOptions
{
    int max_iters = 200;        ///< Maximum simplex iterations.
    double initial_scale = 0.5; ///< Initial simplex edge length.
    double f_tol = 1e-8;        ///< Stop when simplex f-spread is below.
    double x_tol = 1e-8;        ///< Stop when simplex diameter is below.
};

/** Result of a minimization run. */
struct NmResult
{
    std::vector<double> x; ///< Best point found.
    double value = 0.0;    ///< Objective at x.
    double f0 = 0.0;       ///< Objective at the starting point x0
                           ///< (vertex 0 of the initial simplex) —
                           ///< callers comparing "did the run beat its
                           ///< start" read this instead of paying a
                           ///< duplicate evaluation.
    int iterations = 0;    ///< Iterations performed.
    int evaluations = 0;   ///< Objective evaluations consumed.
    bool converged = false;///< True when a tolerance triggered the stop.
};

/**
 * Minimize @p f starting from @p x0 using the standard Nelder-Mead
 * moves (reflect 1, expand 2, contract 0.5, shrink 0.5).
 *
 * @param f Objective; may return +infinity outside its domain.
 * @param x0 Starting point (also sets the dimension).
 * @param options Solver knobs.
 */
NmResult nelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, NmOptions options = {});

/**
 * Run one independent minimization per starting point and return the
 * results in start order. Each run gets its own objective instance
 * from @p make_objective(i), so runs may execute concurrently on
 * @p pool (the caller participates; pass nullptr for strictly serial
 * execution). Because run i touches only objective i and result slot
 * i, the returned values are identical for every thread count —
 * including nullptr — which is how the GP hyper-fit keeps its restart
 * search reproducible while fanning out.
 *
 * @param make_objective Factory: objective for start index i. Called
 *     once per start, from whichever thread claims the run — it must
 *     be safe to invoke concurrently (typically it reads shared
 *     immutable problem state and allocates per-run scratch). The
 *     returned callable is invoked only from run i.
 * @param starts Starting points (all the same dimension).
 * @param options Solver knobs shared by every run.
 * @param pool Worker pool, or nullptr.
 */
std::vector<NmResult> nelderMeadMultiStart(
    const std::function<
        std::function<double(const std::vector<double>&)>(size_t)>&
        make_objective,
    const std::vector<std::vector<double>>& starts,
    NmOptions options = {}, ThreadPool* pool = nullptr);

} // namespace opt
} // namespace clite

#endif // CLITE_OPT_NELDER_MEAD_H

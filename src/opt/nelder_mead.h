/**
 * @file
 * Nelder-Mead downhill simplex minimizer.
 *
 * Used where the paper's reference implementation relies on generic
 * scipy optimizers without constraints: fitting the Gaussian-process
 * hyper-parameters by maximizing the log marginal likelihood (we
 * minimize its negation over log-hyper-parameters, which keeps the
 * search unconstrained and positively-scaled).
 */

#ifndef CLITE_OPT_NELDER_MEAD_H
#define CLITE_OPT_NELDER_MEAD_H

#include <functional>
#include <vector>

namespace clite {
namespace opt {

/** Tuning knobs for Nelder-Mead. */
struct NmOptions
{
    int max_iters = 200;        ///< Maximum simplex iterations.
    double initial_scale = 0.5; ///< Initial simplex edge length.
    double f_tol = 1e-8;        ///< Stop when simplex f-spread is below.
    double x_tol = 1e-8;        ///< Stop when simplex diameter is below.
};

/** Result of a minimization run. */
struct NmResult
{
    std::vector<double> x; ///< Best point found.
    double value = 0.0;    ///< Objective at x.
    int iterations = 0;    ///< Iterations performed.
    int evaluations = 0;   ///< Objective evaluations consumed.
    bool converged = false;///< True when a tolerance triggered the stop.
};

/**
 * Minimize @p f starting from @p x0 using the standard Nelder-Mead
 * moves (reflect 1, expand 2, contract 0.5, shrink 0.5).
 *
 * @param f Objective; may return +infinity outside its domain.
 * @param x0 Starting point (also sets the dimension).
 * @param options Solver knobs.
 */
NmResult nelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, NmOptions options = {});

} // namespace opt
} // namespace clite

#endif // CLITE_OPT_NELDER_MEAD_H

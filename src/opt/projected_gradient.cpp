#include "opt/projected_gradient.h"

#include <cmath>

#include "common/error.h"
#include "opt/simplex.h"

namespace clite {
namespace opt {

ProjectedGradientOptimizer::ProjectedGradientOptimizer(
    std::vector<SimplexBlock> blocks, size_t dimension, PgOptions options)
    : blocks_(std::move(blocks)), dimension_(dimension), options_(options)
{
    std::vector<bool> covered(dimension_, false);
    for (const auto& b : blocks_) {
        CLITE_CHECK(b.indices.size() == b.lo.size() &&
                        b.indices.size() == b.hi.size(),
                    "block bound shapes mismatch block size");
        CLITE_CHECK(!b.indices.empty(), "empty simplex block");
        for (size_t idx : b.indices) {
            CLITE_CHECK(idx < dimension_, "block index " << idx
                            << " out of dimension " << dimension_);
            CLITE_CHECK(!covered[idx],
                        "coordinate " << idx << " in two blocks");
            covered[idx] = true;
        }
        CLITE_CHECK(simplexBoxFeasible(b.total, b.lo, b.hi),
                    "infeasible simplex block with total " << b.total);
    }
}

std::vector<double>
ProjectedGradientOptimizer::project(const std::vector<double>& y) const
{
    CLITE_CHECK(y.size() == dimension_, "project: dimension mismatch");
    std::vector<double> x = y;
    for (const auto& b : blocks_) {
        std::vector<double> sub(b.indices.size());
        for (size_t i = 0; i < b.indices.size(); ++i)
            sub[i] = y[b.indices[i]];
        std::vector<double> proj = projectSimplexBox(sub, b.total, b.lo,
                                                     b.hi);
        for (size_t i = 0; i < b.indices.size(); ++i)
            x[b.indices[i]] = proj[i];
    }
    return x;
}

std::vector<double>
ProjectedGradientOptimizer::gradient(const Objective& f,
                                     const BatchObjective* fb,
                                     const std::vector<double>& x,
                                     int* evals) const
{
    std::vector<double> g(dimension_, 0.0);
    const double h = options_.fd_step;

    if (fb != nullptr) {
        // Gather every x ± h probe of this gradient and score them in
        // one batched call. Each probe vector holds exactly the values
        // the scalar path would pass to f, and the batch objective is
        // value-identical to f per the BatchObjective contract, so
        // g is bit-identical to the scalar branch below.
        std::vector<std::vector<double>> probes;
        std::vector<size_t> probe_idx;
        for (const auto& b : blocks_) {
            for (size_t idx : b.indices) {
                probes.push_back(x);
                probes.back()[idx] = x[idx] + h;
                probes.push_back(x);
                probes.back()[idx] = x[idx] - h;
                probe_idx.push_back(idx);
            }
        }
        std::vector<double> vals(probes.size(), 0.0);
        if (!probes.empty())
            (*fb)(probes, vals.data());
        for (size_t t = 0; t < probe_idx.size(); ++t)
            g[probe_idx[t]] = (vals[2 * t] - vals[2 * t + 1]) / (2.0 * h);
        *evals += int(probes.size());
        return g;
    }

    std::vector<double> xp = x;
    for (const auto& b : blocks_) {
        for (size_t idx : b.indices) {
            double orig = xp[idx];
            xp[idx] = orig + h;
            double fp = f(xp);
            xp[idx] = orig - h;
            double fm = f(xp);
            xp[idx] = orig;
            g[idx] = (fp - fm) / (2.0 * h);
            *evals += 2;
        }
    }
    return g;
}

PgResult
ProjectedGradientOptimizer::maximize(const Objective& f,
                                     const std::vector<double>& x0) const
{
    return maximize(f, BatchObjective(), x0);
}

PgResult
ProjectedGradientOptimizer::maximize(const Objective& f,
                                     const BatchObjective& fb,
                                     const std::vector<double>& x0) const
{
    PgResult result;
    std::vector<double> x = project(x0);
    double fx = f(x);
    result.evaluations = 1;

    for (int iter = 0; iter < options_.max_iters; ++iter) {
        result.iterations = iter + 1;
        std::vector<double> g =
            gradient(f, fb ? &fb : nullptr, x, &result.evaluations);

        // Backtracking along the projected arc: x(t) = P(x + t g).
        double step = options_.initial_step;
        bool improved = false;
        for (int bt = 0; bt < options_.max_backtracks; ++bt) {
            std::vector<double> trial = x;
            for (size_t i = 0; i < dimension_; ++i)
                trial[i] += step * g[i];
            trial = project(trial);
            double ft = f(trial);
            ++result.evaluations;
            if (ft > fx + options_.tol) {
                x = std::move(trial);
                fx = ft;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if (!improved)
            break;
    }

    result.x = std::move(x);
    result.value = fx;
    return result;
}

PgResult
ProjectedGradientOptimizer::maximizeMultiStart(
    const Objective& f,
    const std::vector<std::vector<double>>& starts) const
{
    return maximizeMultiStart(f, BatchObjective(), starts);
}

PgResult
ProjectedGradientOptimizer::maximizeMultiStart(
    const Objective& f, const BatchObjective& fb,
    const std::vector<std::vector<double>>& starts) const
{
    CLITE_CHECK(!starts.empty(), "maximizeMultiStart needs >= 1 start");
    PgResult best;
    bool first = true;
    for (const auto& s : starts) {
        PgResult r = maximize(f, fb, s);
        if (first || r.value > best.value) {
            int evals = (first ? 0 : best.evaluations) + r.evaluations;
            int iters = (first ? 0 : best.iterations) + r.iterations;
            best = std::move(r);
            best.evaluations = evals;
            best.iterations = iters;
            first = false;
        } else {
            best.evaluations += r.evaluations;
            best.iterations += r.iterations;
        }
    }
    return best;
}

} // namespace opt
} // namespace clite
